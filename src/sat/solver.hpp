// solver.hpp — CDCL SAT solver with resolution proof logging.
//
// A MiniSat-lineage solver: two-watched-literal propagation, first-UIP
// conflict analysis with chain-logged clause minimization, VSIDS decision
// heuristic with phase saving, selectable Luby or glue-EMA restarts and
// LBD-tiered learned clause database reduction.
//
// The distinctive feature is *proof logging*: when enabled, every learned
// clause records the trivial resolution chain that derives it, and an UNSAT
// answer comes with a complete refutation of the input clauses
// (see sat/proof.hpp).  Interpolants and interpolation sequences are then
// extracted from this proof (itp/interpolate.hpp).
//
// Both usage styles are supported: one-shot (create, new_var/add_clause,
// solve(); how the interpolation engines operate, proof logging on) and
// long-lived incremental (clauses added between solve_assuming() calls;
// how PDR and incremental BMC operate).  The storage layer below is built
// so the incremental style stays lean over thousands of queries.
//
// --- Clause storage architecture -------------------------------------------
//
// All clauses live in ONE flat std::uint32_t arena (arena_).  A clause is a
// packed header followed by its literals inline:
//
//     word 0   size << 4 | flags   (bit0 learned, bit1 deleted, bit2 reloc)
//     word 1   ClauseId            (proof identity; kNoClauseId w/o proof)
//     word 2   LBD                 (glue; 0 for input clauses)
//     word 3   activity            (float bit pattern)
//     word 4.. literals            (size words)
//
// A CRef is a word offset into the arena, so dereferencing a clause is one
// add — no per-clause heap allocation, no pointer chase, and propagation
// walks memory that is contiguous in allocation (≈ use) order.  `Cls` is a
// transient *view* into the arena: any allocation may reallocate the arena
// and invalidates every outstanding view (the same discipline as AIG node
// references; see the PR 1 BddManager use-after-free).
//
// Binary clauses: watch lists are split.  bin_watches_[l] stores the
// *implied literal* inline next to the CRef, so binary propagation reads
// only the watcher vector and never touches the arena; the CRef is kept
// solely for conflict analysis and proof chains (cold path).  Long clauses
// use classic blocker watchers (watches_[l], scanned when l becomes false).
//
// Learned-clause retention is LBD-tiered (Glucose-style), activity as the
// tiebreak:
//   core   LBD <= 2          never deleted (glue clauses),
//   tier2  3 <= LBD <= 6     deleted only after every local clause,
//   local  LBD > 6           first to go; reduce_db() removes the worst
//                            half of the reducible clauses, ordered by
//                            (tier, LBD desc, activity asc).
// A clause's LBD can only improve: it is recomputed when the clause is used
// in conflict analysis and lowered if smaller (possibly promoting it to a
// better tier).  Binary and reason-locked clauses are never deleted.
//
// Garbage collection: deleted clauses (reduce_db + satisfied-at-level-0
// removal) only set a header flag and count their words as wasted;
// garbage_collect() physically compacts the arena once wasted words exceed
// gc_frac_ of it, rewriting every CRef holder (watches, binary watches,
// trail reasons, learned_list_, root_conflict_) via forwarding pointers
// left in the old arena.  GC remaps CRefs but NEVER renumbers ClauseIds —
// proof chains, interpolation and DRAT/tracecheck output stay valid across
// any number of collections.  This is what keeps one-solver-per-run engines
// (PDR, incremental BMC/ITPSEQ) at a bounded footprint: clauses retired by
// activation-literal units become satisfied at level 0, are physically
// reclaimed, and their watcher entries disappear with them.
//
// --- Inprocessing ----------------------------------------------------------
//
// When enabled (the default), the solver simplifies its own clause database
// *between* searches: a round runs at solve entry and at level-0 restarts,
// amortized so at most one round per inprocess-interval conflicts
// (set_inprocess_interval; the first solve always gets one).  A round is,
// in order: level-0 propagation to fixpoint, satisfied-clause removal,
// signature-accelerated subsumption + self-subsuming resolution, bounded
// variable elimination (BVE) with model reconstruction, clause vivification,
// and failed-literal probing with on-the-fly hyper-binary resolution (the
// derived binaries feed the dedicated binary-watch path).  See inprocess.cpp.
//
// Proof-safety invariants (what keeps proofs/ITP/tracecheck valid):
//   * every rewrite is a logged resolution: a strengthened clause is a new
//     proof clause with chain [old, subsumer] and the removed literal's var
//     as pivot; each BVE resolvent is logged with chain [C+, C-] on the
//     eliminated var; vivification/probing derivations resolve the starting
//     clause against trail reasons (the analyze_final worklist pattern);
//   * the Proof object retains every clause ever logged, so solver-side
//     deletion (subsumption, BVE originals, reduce_db) never invalidates a
//     recorded chain;
//   * reason-locked and satisfied clauses are never rewritten (at level 0 a
//     locked clause is satisfied by its implied literal, so the occurrence
//     index — built over unsatisfied clauses only — cannot even see one).
//
// Freeze contract: variables the caller will assume (activation literals,
// interface/latch vars) must never be eliminated.  freeze(v) marks a var
// permanently; solve_assuming() additionally auto-freezes every assumption
// var and *restores* any that was already eliminated (re-installing its
// recorded clauses under their original ClauseIds, so no new proof steps
// are needed).  add_clause() restores eliminated vars it mentions the same
// way.  On kSat the model is extended over eliminated vars in reverse
// elimination order, so callers read a total model regardless.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "sat/checked.hpp"
#include "sat/proof.hpp"
#include "sat/types.hpp"

namespace itpseq::sat {

/// Resource limits for one solve() call.  Negative means unlimited.
/// `cancel` is a cooperative cancellation token (non-owning): when the
/// pointed-to flag becomes true the solver abandons the search at the next
/// poll point and returns kUnknown.  It is polled on every conflict and
/// periodically between decisions, so cancellation latency is bounded by a
/// short burst of propagation, not by the time/conflict budget.
struct Budget {
  std::int64_t conflicts = -1;
  double seconds = -1.0;
  const std::atomic<bool>* cancel = nullptr;
};

/// Restart policy for solve().
///   kLuby  reluctant-doubling (Luby) sequence scaled by a 100-conflict
///          base unit — robust, the historical default.
///   kEma   Glucose-style adaptivity: restart as soon as the short-term
///          average glue (LBD) of learned clauses drifts 25% above the
///          long-term average, i.e. the search has left the subspace where
///          it was learning well.  Often stronger on UNSAT-heavy
///          incremental loads (BMC/PDR consecution queries).
enum class RestartMode : std::uint8_t { kLuby, kEma };

/// Solver statistics, exposed for benchmarks and engine diagnostics.
struct SolverStats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;      // all implications (incl. binary)
  std::uint64_t bin_propagations = 0;  // implications from binary watchers
  std::uint64_t conflicts = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learned_literals = 0;
  std::uint64_t minimized_literals = 0;
  std::uint64_t db_reductions = 0;
  std::uint64_t gc_runs = 0;                 // arena compactions
  std::uint64_t wasted_bytes_reclaimed = 0;  // total bytes GC gave back
  std::uint64_t removed_satisfied = 0;       // level-0-satisfied clauses freed
  std::uint64_t peak_arena_bytes = 0;        // clause-store high-water mark
  /// Learned clauses entering each retention tier (by glue at learning
  /// time; promotions by dynamic LBD improvement are not re-counted).
  std::uint64_t learned_core = 0;   // LBD <= 2: immortal
  std::uint64_t learned_mid = 0;    // 3 <= LBD <= 6: deleted last
  std::uint64_t learned_local = 0;  // LBD > 6: first to go
  /// Learned-clause glue histogram: bucket min(LBD, 8) - 1, i.e. the last
  /// bucket aggregates every clause with LBD >= 8.
  std::array<std::uint64_t, 8> glue_hist{};
  /// Inprocessing (see solver.hpp header and inprocess.cpp).
  std::uint64_t inprocess_rounds = 0;
  std::uint64_t subsumed = 0;          // clauses dropped by subsumption
  std::uint64_t strengthened = 0;      // self-subsuming resolution rewrites
  std::uint64_t vars_eliminated = 0;   // BVE-eliminated variables
  std::uint64_t vars_restored = 0;     // eliminated vars brought back
  std::uint64_t vivified = 0;          // clauses shortened by vivification
  std::uint64_t probed = 0;            // failed-literal probes attempted
  std::uint64_t failed_literals = 0;   // probes that yielded a unit
  std::uint64_t hyper_binaries = 0;    // binaries from hyper-binary resolution
  std::uint64_t restarts_blocked = 0;  // EMA restarts vetoed by trail size

  /// Cross-solver aggregation for benchmark drivers: counters are summed,
  /// the arena high-water mark takes the maximum.  Keep this the single
  /// place that knows every field.
  SolverStats& operator+=(const SolverStats& s) {
    decisions += s.decisions;
    propagations += s.propagations;
    bin_propagations += s.bin_propagations;
    conflicts += s.conflicts;
    restarts += s.restarts;
    learned_literals += s.learned_literals;
    minimized_literals += s.minimized_literals;
    db_reductions += s.db_reductions;
    gc_runs += s.gc_runs;
    wasted_bytes_reclaimed += s.wasted_bytes_reclaimed;
    removed_satisfied += s.removed_satisfied;
    if (s.peak_arena_bytes > peak_arena_bytes)
      peak_arena_bytes = s.peak_arena_bytes;
    learned_core += s.learned_core;
    learned_mid += s.learned_mid;
    learned_local += s.learned_local;
    for (std::size_t i = 0; i < glue_hist.size(); ++i)
      glue_hist[i] += s.glue_hist[i];
    inprocess_rounds += s.inprocess_rounds;
    subsumed += s.subsumed;
    strengthened += s.strengthened;
    vars_eliminated += s.vars_eliminated;
    vars_restored += s.vars_restored;
    vivified += s.vivified;
    probed += s.probed;
    failed_literals += s.failed_literals;
    hyper_binaries += s.hyper_binaries;
    restarts_blocked += s.restarts_blocked;
    return *this;
  }
};

class Solver {
 public:
  Solver();
  ~Solver();
  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  /// Enable resolution proof logging.  Must be called before any add_clause.
  void enable_proof();
  bool proof_enabled() const { return proof_ != nullptr; }

  /// Create a fresh variable; returns its index.
  Var new_var();
  std::size_t num_vars() const { return assign_.size(); }

  /// Add an input clause.  `label` tags the clause's partition (time frame)
  /// for interpolation.  Returns false iff the formula is already trivially
  /// unsatisfiable at level 0 (solve() will still produce a proof).
  /// Clauses may also be added *between* solve() calls (incremental use).
  bool add_clause(std::vector<Lit> lits, std::uint32_t label = 0);

  /// Solve the accumulated formula.
  Status solve(const Budget& budget = {});

  /// Solve under assumptions (incremental interface).  kUnsat with a
  /// non-empty assumption set means "unsatisfiable under these
  /// assumptions"; failed_assumptions() then returns a subset sufficient
  /// for the conflict.  Without assumptions kUnsat is final (ok() false).
  /// Incompatible with proof logging (throws std::logic_error).
  Status solve_assuming(const std::vector<Lit>& assumptions,
                        const Budget& budget = {});

  /// After solve_assuming() == kUnsat: an inconsistent subset of the
  /// assumptions (the "core"; not necessarily minimal).
  const std::vector<Lit>& failed_assumptions() const { return failed_; }

  /// False once the clause set itself (independent of assumptions) has been
  /// refuted; further solves return kUnsat immediately.
  bool ok() const { return ok_; }

  /// After kSat: value of a variable in the model.
  bool model_value(Var v) const { return model_[v] == LBool::kTrue; }
  /// After kSat: full model (indexed by var).
  const std::vector<LBool>& model() const { return model_; }

  /// After kUnsat with proof logging: the refutation.
  const Proof& proof() const { return *proof_; }

  const SolverStats& stats() const { return stats_; }

  /// Current clause-arena footprint in bytes (live + not-yet-collected).
  std::size_t arena_bytes() const { return arena_.size() * sizeof(std::uint32_t); }
  /// Bytes currently occupied by deleted clauses awaiting collection.
  std::size_t wasted_bytes() const { return wasted_ * sizeof(std::uint32_t); }

  /// Tuning/testing knobs.  gc_frac: collect once wasted words exceed this
  /// fraction of the arena (default 0.25; stress tests force it near 0).
  /// reduce_base: initial learned-clause cap (default max(1000, inputs/3);
  /// an explicit value overrides the input-size scaling so tests can force
  /// reduce_db() on small instances).
  void set_gc_frac(double f) { gc_frac_ = f; }
  void set_reduce_base(double b) {
    reduce_base_ = b;
    reduce_base_forced_ = true;
  }

  /// Select the restart policy (default Luby).  May be changed between
  /// solve() calls; it never affects verdicts, only search order.
  void set_restart_mode(RestartMode m) { restart_mode_ = m; }
  RestartMode restart_mode() const { return restart_mode_; }

  /// Enable/disable inprocessing (default on).  See the header comment for
  /// what a round does and the proof-safety/freeze contracts.
  void set_inprocess(bool on) { inprocess_on_ = on; }
  bool inprocess_enabled() const { return inprocess_on_; }
  /// Minimum conflicts between inprocessing rounds (default 4000).  Testing
  /// knob: 0 forces a round at every solve entry and level-0 restart.
  void set_inprocess_interval(std::uint64_t conflicts) {
    inprocess_interval_ = conflicts;
  }
  /// Mark a variable as never-eliminate (assumption/activation/interface
  /// vars).  solve_assuming() freezes its assumption vars automatically;
  /// engines should still freeze vars they will assume *later*, to avoid
  /// eliminate-then-restore churn.
  void freeze(Var v) { frozen_[v] = 1; }
  bool is_frozen(Var v) const { return frozen_[v] != 0; }
  /// True while v is eliminated by BVE (cleared again if v is restored).
  bool is_eliminated(Var v) const { return eliminated_[v] != 0; }

  /// Check that a full assignment satisfies every input clause (debugging).
  bool verify_model() const;

#ifdef ITPSEQ_CHECKED
  /// Deliberately violates the view contract: fetches a Cls, forces an
  /// arena allocation, then dereferences the stale view.  Exists only so
  /// tests/checked_test.cpp can death-test the epoch validation; returns
  /// the (never-reached) stale size.
  std::uint32_t debug_stale_view_probe();
#endif

 private:
  using CRef = std::uint32_t;
  static constexpr CRef kNoCRef = 0xffffffffu;

  static constexpr std::uint32_t kHeaderWords = 4;
  static constexpr std::uint32_t kLearnedFlag = 1u;
  static constexpr std::uint32_t kDeletedFlag = 2u;
  static constexpr std::uint32_t kRelocFlag = 4u;
  static constexpr std::uint32_t kFlagBits = 4;  // size lives in word0 >> 4

  static constexpr std::uint32_t kCoreLbd = 2;   // glue tier: immortal
  static constexpr std::uint32_t kTier2Lbd = 6;  // mid tier: deleted last

  /// Transient view of an arena clause (invalidated by any allocation).
  /// Under ITPSEQ_CHECKED every view fetched through cls() captures the
  /// arena epoch at fetch time and validates it on each dereference — a
  /// view held across alloc_clause()/garbage_collect() aborts with a
  /// diagnostic instead of silently reading freed memory.
  struct Cls {
    std::uint32_t* base;
#ifdef ITPSEQ_CHECKED
    const Solver* owner = nullptr;  // nullptr: unchecked (foreign buffer)
    std::uint64_t epoch = 0;
    std::uint32_t* b() const {
      ITPSEQ_CHECK(owner == nullptr || epoch == owner->arena_epoch_,
                   "stale Cls view: the clause arena was reallocated or "
                   "compacted since this view was fetched; re-fetch with "
                   "cls() after anything that can allocate");
      return base;
    }
#else
    std::uint32_t* b() const { return base; }
#endif
    std::uint32_t size() const { return b()[0] >> kFlagBits; }
    bool learned() const { return (b()[0] & kLearnedFlag) != 0; }
    bool deleted() const { return (b()[0] & kDeletedFlag) != 0; }
    void set_deleted() { b()[0] |= kDeletedFlag; }
    void clear_learned() { b()[0] &= ~kLearnedFlag; }
    ClauseId id() const { return b()[1]; }
    std::uint32_t lbd() const { return b()[2]; }
    void set_lbd(std::uint32_t g) { b()[2] = g; }
    float activity() const {
      float a;
      std::memcpy(&a, &b()[3], sizeof a);
      return a;
    }
    void set_activity(float a) { std::memcpy(&b()[3], &a, sizeof a); }
    Lit* lits() { return b() + kHeaderWords; }
    const Lit* lits() const { return b() + kHeaderWords; }
    Lit* begin() { return lits(); }
    Lit* end() { return lits() + size(); }
    Lit& operator[](std::uint32_t i) { return b()[kHeaderWords + i]; }
    Lit operator[](std::uint32_t i) const { return b()[kHeaderWords + i]; }
  };
#ifdef ITPSEQ_CHECKED
  Cls cls(CRef cr) { return Cls{arena_.data() + cr, this, arena_epoch_}; }
  const Cls cls(CRef cr) const {
    return Cls{const_cast<std::uint32_t*>(arena_.data()) + cr, this,
               arena_epoch_};
  }
#else
  Cls cls(CRef cr) { return Cls{arena_.data() + cr}; }
  const Cls cls(CRef cr) const {
    return Cls{const_cast<std::uint32_t*>(arena_.data()) + cr};
  }
#endif

  /// Watcher for clauses of size >= 3.
  struct Watcher {
    CRef cref;
    Lit blocker;  // fast satisfied-check before touching the clause
  };
  /// Watcher for binary clauses: the implication is resolved entirely from
  /// the watch list; `cr` is only read by analysis/proof code.
  struct BinWatcher {
    Lit other;
    CRef cr;
  };

  struct VarData {
    CRef reason = kNoCRef;
    std::uint32_t level = 0;
    std::uint32_t trail_pos = 0;
  };

  LBool value(Lit l) const { return lbool_xor(assign_[var(l)], sign(l)); }
  LBool value_var(Var v) const { return assign_[v]; }

  CRef alloc_clause(const std::vector<Lit>& lits, ClauseId id, bool learned,
                    std::uint32_t lbd);
  void attach(CRef cr);
  void detach(CRef cr);
  bool locked(CRef cr);
  void delete_clause(CRef cr);
  std::uint32_t compute_lbd(const std::vector<Lit>& lits);
  void update_lbd(Cls c);
  void enqueue(Lit l, CRef reason);
  CRef propagate();
  void analyze(CRef conflict, std::vector<Lit>& out_learned, std::uint32_t& out_level,
               ResolutionChain& out_chain);
  void minimize_learned(std::vector<Lit>& learned, ResolutionChain& chain);
  void analyze_final(CRef conflict);  // derive empty clause at level 0
  void analyze_assumption(Lit failed);  // collect the failed-assumption core
  void backtrack(std::uint32_t level);
  Lit pick_branch();
  void bump_var(Var v);
  void decay_var_activity();
  void bump_clause(Cls c);
  void decay_clause_activity();
  void reduce_db();
  void maybe_simplify();
  void remove_satisfied();
  void maybe_gc();
  void garbage_collect();
  void heap_insert(Var v);
  Var heap_pop();
  void heap_up(std::size_t i);
  void heap_down(std::size_t i);
  bool heap_contains(Var v) const { return heap_pos_[v] != kNoPos; }
  double luby(std::uint64_t i) const;

  // inprocessing (inprocess.cpp) -------------------------------------------
  /// One clause recorded when its variable was eliminated: the literal set
  /// and the proof id it was originally logged under (restore re-installs it
  /// under the same id — no new proof steps).
  struct ElimClause {
    std::vector<Lit> lits;
    ClauseId id;
  };
  struct ElimRecord {
    Var v;
    std::vector<ElimClause> clauses;
    bool active = true;  // false once the var was restored
  };
  /// Transient occurrence index over the live, unsatisfied clauses; lives
  /// only for the subsumption/BVE phase of one round (see inprocess.cpp).
  struct OccIndex;

  bool maybe_inprocess();  // false iff the round refuted the formula
  bool inprocess();        // one full round; false iff refuted
  bool inprocess_subsume_eliminate();
  bool inprocess_vivify();
  bool inprocess_probe();
  bool subsume_with(OccIndex& ix, std::size_t i, std::uint64_t& ticks);
  /// Reclassify a learned clause as input (irredundant).  Required before a
  /// learned clause may subsume-delete an input clause: afterwards it may be
  /// the only carrier of that constraint, and BVE drops learned clauses with
  /// the pivot without resolving them.
  void promote_to_input(CRef cr);
  bool try_eliminate(OccIndex& ix, Var v);
  void strengthen_in_index(OccIndex& ix, std::size_t di, Lit drop,
                           ClauseId subsumer_id);
  /// Log a derived clause: add_learned normally, set_final for the empty
  /// clause, and a chain of one clause (no resolutions) reuses its own id.
  ClauseId log_derived(const std::vector<Lit>& lits, ResolutionChain&& chain);
  /// Allocate + attach/enqueue an already-logged clause at level 0.  Returns
  /// kNoCRef when the clause is satisfied at level 0 (nothing installed);
  /// sets ok_ = false on a root conflict.
  CRef integrate_clause(std::vector<Lit> lits, ClauseId id, bool learned,
                        std::uint32_t lbd);
  /// log_derived + integrate_clause; false iff the formula became refuted.
  bool install_derived(std::vector<Lit> lits, ResolutionChain&& chain,
                       bool learned, std::uint32_t lbd);
  /// Resolve the clause at `start` against trail reasons until only
  /// reason-free literals remain (decisions, unassigned literals and `keep`,
  /// which may be kNoLit); the analyze_final worklist pattern.  Appends the
  /// proof chain when logging is on (starting from start's own id).
  std::vector<Lit> resolve_with_reasons(CRef start, Lit keep,
                                        ResolutionChain& chain);
  void restore_var(Var v);  // undo BVE for v (freeze it permanently)
  void extend_model_over_eliminated(std::vector<LBool>& model) const;

  // clause storage ---------------------------------------------------------
  std::vector<std::uint32_t> arena_;         // flat clause arena (see header)
#ifdef ITPSEQ_CHECKED
  // Bumped by every alloc_clause() and every garbage_collect(): any Cls
  // fetched before the bump aborts on its next dereference.  The counter is
  // bumped even when the vector did not physically move — the *contract* is
  // "re-fetch after anything that can allocate", and the checked build
  // enforces the contract, not this run's luck.
  std::uint64_t arena_epoch_ = 0;
  void checked_audit_freeze() const;         // end-of-inprocess invariants
#endif
  std::vector<CRef> learned_list_;           // arena refs of learned clauses
  std::size_t num_input_clauses_ = 0;
  std::size_t wasted_ = 0;                   // deleted words awaiting GC
  double gc_frac_ = 0.25;

  // assignment -------------------------------------------------------------
  std::vector<LBool> assign_;
  std::vector<VarData> var_data_;
  std::vector<Lit> trail_;
  std::vector<std::uint32_t> trail_lim_;     // decision-level boundaries
  std::size_t qhead_ = 0;

  // watches (MiniSat convention: watches_[l] holds clauses that watch
  // literal l, scanned when l becomes false).  Binary clauses live in their
  // own lists with the implied literal inline.
  std::vector<std::vector<Watcher>> watches_;
  std::vector<std::vector<BinWatcher>> bin_watches_;

  // heuristics -------------------------------------------------------------
  std::vector<double> activity_;
  std::vector<std::uint8_t> phase_;          // saved polarity per var
  double var_inc_ = 1.0;
  double clause_inc_ = 1.0;
  static constexpr std::size_t kNoPos = static_cast<std::size_t>(-1);
  std::vector<Var> heap_;
  std::vector<std::size_t> heap_pos_;

  // analysis scratch -------------------------------------------------------
  std::vector<std::uint8_t> seen_;
  std::vector<std::uint64_t> level_stamp_;   // LBD distinct-level marking
  std::uint64_t lbd_stamp_ = 0;

  // state ------------------------------------------------------------------
  bool ok_ = true;                           // false once root-level conflict found
  CRef root_conflict_ = kNoCRef;             // clause falsified at level 0
  std::vector<Lit> assumptions_;             // active during solve_assuming
  std::vector<Lit> failed_;                  // assumption core after kUnsat
  std::vector<LBool> model_;
  std::unique_ptr<Proof> proof_;
  SolverStats stats_;
  double max_learned_ = 0;
  double reduce_base_ = 1000.0;
  bool reduce_base_forced_ = false;
  bool mem_degraded_ = false;  // rung 1 of the memory ladder taken (one-shot)
  RestartMode restart_mode_ = RestartMode::kLuby;
  std::size_t simplify_trail_ = 0;           // trail size at last remove_satisfied
  std::uint64_t simplify_props_ = 0;         // propagation count at last sweep

  // inprocessing state -------------------------------------------------------
  bool inprocess_on_ = true;
  std::uint64_t inprocess_interval_ = 4000;  // conflicts between rounds
  bool inprocessed_once_ = false;
  std::uint64_t last_inprocess_conflicts_ = 0;
  std::vector<std::uint8_t> frozen_;         // per var: never eliminate
  std::vector<std::uint8_t> eliminated_;     // per var: currently BVE'd away
  std::vector<ElimRecord> elim_trail_;       // elimination order (for models)
  std::size_t vivify_head_ = 0;              // rotating cursors so successive
  std::size_t probe_head_ = 0;               // rounds cover different regions
};

}  // namespace itpseq::sat
