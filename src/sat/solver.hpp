// solver.hpp — CDCL SAT solver with resolution proof logging.
//
// A MiniSat-lineage solver: two-watched-literal propagation, first-UIP
// conflict analysis with chain-logged clause minimization, VSIDS decision
// heuristic with phase saving, Luby restarts and activity-based learned
// clause database reduction.
//
// The distinctive feature is *proof logging*: when enabled, every learned
// clause records the trivial resolution chain that derives it, and an UNSAT
// answer comes with a complete refutation of the input clauses
// (see sat/proof.hpp).  Interpolants and interpolation sequences are then
// extracted from this proof (itp/interpolate.hpp).
//
// Usage is one-shot: create, new_var/add_clause, solve().  Model-checking
// engines build a fresh solver per query, which keeps proof bookkeeping
// simple and is how the original interpolation papers operate.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "sat/proof.hpp"
#include "sat/types.hpp"

namespace itpseq::sat {

/// Resource limits for one solve() call.  Negative means unlimited.
/// `cancel` is a cooperative cancellation token (non-owning): when the
/// pointed-to flag becomes true the solver abandons the search at the next
/// poll point and returns kUnknown.  It is polled on every conflict and
/// periodically between decisions, so cancellation latency is bounded by a
/// short burst of propagation, not by the time/conflict budget.
struct Budget {
  std::int64_t conflicts = -1;
  double seconds = -1.0;
  const std::atomic<bool>* cancel = nullptr;
};

/// Solver statistics, exposed for benchmarks and engine diagnostics.
struct SolverStats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learned_literals = 0;
  std::uint64_t minimized_literals = 0;
  std::uint64_t db_reductions = 0;
};

class Solver {
 public:
  Solver();
  ~Solver();
  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  /// Enable resolution proof logging.  Must be called before any add_clause.
  void enable_proof();
  bool proof_enabled() const { return proof_ != nullptr; }

  /// Create a fresh variable; returns its index.
  Var new_var();
  std::size_t num_vars() const { return assign_.size(); }

  /// Add an input clause.  `label` tags the clause's partition (time frame)
  /// for interpolation.  Returns false iff the formula is already trivially
  /// unsatisfiable at level 0 (solve() will still produce a proof).
  /// Clauses may also be added *between* solve() calls (incremental use).
  bool add_clause(std::vector<Lit> lits, std::uint32_t label = 0);

  /// Solve the accumulated formula.
  Status solve(const Budget& budget = {});

  /// Solve under assumptions (incremental interface).  kUnsat with a
  /// non-empty assumption set means "unsatisfiable under these
  /// assumptions"; failed_assumptions() then returns a subset sufficient
  /// for the conflict.  Without assumptions kUnsat is final (ok() false).
  /// Incompatible with proof logging (throws std::logic_error).
  Status solve_assuming(const std::vector<Lit>& assumptions,
                        const Budget& budget = {});

  /// After solve_assuming() == kUnsat: an inconsistent subset of the
  /// assumptions (the "core"; not necessarily minimal).
  const std::vector<Lit>& failed_assumptions() const { return failed_; }

  /// False once the clause set itself (independent of assumptions) has been
  /// refuted; further solves return kUnsat immediately.
  bool ok() const { return ok_; }

  /// After kSat: value of a variable in the model.
  bool model_value(Var v) const { return model_[v] == LBool::kTrue; }
  /// After kSat: full model (indexed by var).
  const std::vector<LBool>& model() const { return model_; }

  /// After kUnsat with proof logging: the refutation.
  const Proof& proof() const { return *proof_; }

  const SolverStats& stats() const { return stats_; }

  /// Check that a full assignment satisfies every input clause (debugging).
  bool verify_model() const;

 private:
  struct Clause {
    std::vector<Lit> lits;
    ClauseId id = kNoClauseId;
    double activity = 0.0;
    bool learned = false;
    bool deleted = false;
  };
  using CRef = std::uint32_t;
  static constexpr CRef kNoCRef = 0xffffffffu;

  struct Watcher {
    CRef cref;
    Lit blocker;  // fast satisfied-check before touching the clause
  };

  struct VarData {
    CRef reason = kNoCRef;
    std::uint32_t level = 0;
    std::uint32_t trail_pos = 0;
  };

  LBool value(Lit l) const { return lbool_xor(assign_[var(l)], sign(l)); }
  LBool value_var(Var v) const { return assign_[v]; }

  void attach(CRef cr);
  void detach(CRef cr);
  void enqueue(Lit l, CRef reason);
  CRef propagate();
  void analyze(CRef conflict, std::vector<Lit>& out_learned, std::uint32_t& out_level,
               ResolutionChain& out_chain);
  void minimize_learned(std::vector<Lit>& learned, ResolutionChain& chain);
  void analyze_final(CRef conflict);  // derive empty clause at level 0
  void analyze_assumption(Lit failed);  // collect the failed-assumption core
  void backtrack(std::uint32_t level);
  Lit pick_branch();
  void bump_var(Var v);
  void decay_var_activity();
  void bump_clause(Clause& c);
  void decay_clause_activity();
  void reduce_db();
  void heap_insert(Var v);
  Var heap_pop();
  void heap_up(std::size_t i);
  void heap_down(std::size_t i);
  bool heap_contains(Var v) const { return heap_pos_[v] != kNoPos; }
  double luby(std::uint64_t i) const;

  // clause storage ---------------------------------------------------------
  std::vector<Clause> clauses_;              // arena of all clauses
  std::vector<CRef> learned_list_;           // indices of learned clauses
  std::size_t num_input_clauses_ = 0;

  // assignment -------------------------------------------------------------
  std::vector<LBool> assign_;
  std::vector<VarData> var_data_;
  std::vector<Lit> trail_;
  std::vector<std::uint32_t> trail_lim_;     // decision-level boundaries
  std::size_t qhead_ = 0;

  // watches: watches_[lit] = clauses watching lit (i.e. containing ~lit ...
  // MiniSat convention: watches_[l] holds clauses that watch literal l,
  // scanned when l becomes false).
  std::vector<std::vector<Watcher>> watches_;

  // heuristics -------------------------------------------------------------
  std::vector<double> activity_;
  std::vector<std::uint8_t> phase_;          // saved polarity per var
  double var_inc_ = 1.0;
  double clause_inc_ = 1.0;
  static constexpr std::size_t kNoPos = static_cast<std::size_t>(-1);
  std::vector<Var> heap_;
  std::vector<std::size_t> heap_pos_;

  // analysis scratch -------------------------------------------------------
  std::vector<std::uint8_t> seen_;

  // state ------------------------------------------------------------------
  bool ok_ = true;                           // false once root-level conflict found
  CRef root_conflict_ = kNoCRef;             // clause falsified at level 0
  std::vector<Lit> assumptions_;             // active during solve_assuming
  std::vector<Lit> failed_;                  // assumption core after kUnsat
  std::vector<LBool> model_;
  std::unique_ptr<Proof> proof_;
  SolverStats stats_;
  double max_learned_ = 0;
};

}  // namespace itpseq::sat
