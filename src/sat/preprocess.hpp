// preprocess.hpp — CNF preprocessing (SatELite-style).
//
// Implements the classic simplification trio on a clause database:
//   * subsumption          — drop D when some C ⊆ D;
//   * self-subsumption     — strengthen D to D \ {¬l} when C \ {l} ⊆ D;
//   * bounded variable elimination — replace all clauses containing v by
//     the non-tautological resolvents on v whenever that does not grow the
//     database beyond a small bound.
//
// Eliminated variables are recorded so that a model of the simplified
// formula can be *extended* to a model of the original one (needed by
// callers that read counterexamples back).
//
// Role: this is the standalone, CNF-level variant of the machinery.  The
// model-checking engines do NOT use it — they rely on the Solver's built-in
// inprocessing (Solver::set_inprocess, on by default), which runs the same
// trio plus vivification and probing *inside* the solver, where every
// rewrite is proof-logged and eliminated vars can be transparently restored
// for later assumptions.  The Preprocessor remains useful as a proof-free
// front-end for one-shot CNF workloads (see bench/bench_sat.cpp) and as the
// reference implementation the in-solver pipeline is tested against.
#pragma once

#include <cstdint>
#include <vector>

#include "sat/types.hpp"

namespace itpseq::sat {

struct PreprocessStats {
  unsigned subsumed = 0;
  unsigned strengthened = 0;
  unsigned vars_eliminated = 0;
  unsigned clauses_in = 0;
  unsigned clauses_out = 0;
};

class Preprocessor {
 public:
  explicit Preprocessor(unsigned num_vars);

  /// Add an original clause (before run()).
  void add_clause(std::vector<Lit> lits);

  /// Run simplification to fixpoint (or until effort bounds).
  /// `grow` is the allowed clause-count increase per eliminated variable.
  void run(int grow = 0, unsigned max_occ = 20);

  /// True when preprocessing derived the empty clause.
  bool unsat() const { return unsat_; }

  /// Remaining simplified clauses.
  std::vector<std::vector<Lit>> clauses() const;

  /// Variables that must not be touched (e.g. those the caller needs to
  /// read back or assume).  Call before run().
  void freeze(Var v);

  /// Extend a model over the simplified formula to the eliminated
  /// variables (in reverse elimination order).  `model` is indexed by var
  /// and entries for eliminated vars are overwritten.
  void extend_model(std::vector<LBool>& model) const;

  const PreprocessStats& stats() const { return stats_; }

 private:
  struct Clause {
    std::vector<Lit> lits;
    std::uint64_t signature = 0;  // Bloom signature for subsumption tests
    bool deleted = false;
  };

  static std::uint64_t sig_of(const std::vector<Lit>& lits);
  bool tautology(const std::vector<Lit>& lits) const;
  /// C subsumes D?
  static bool subsumes(const Clause& c, const Clause& d);
  /// If C self-subsumes D on exactly one literal, return it (else kNoLit).
  static Lit self_subsume_lit(const Clause& c, const Clause& d);
  void attach(std::size_t idx);
  void detach(std::size_t idx);
  void remove_clause(std::size_t idx);
  bool add_derived(std::vector<Lit> lits);
  bool subsumption_pass();
  bool eliminate_var(Var v, int grow, unsigned max_occ);

  unsigned num_vars_;
  std::vector<Clause> db_;
  std::vector<std::vector<std::size_t>> occ_;  // per literal: clause indices
  std::vector<bool> frozen_;
  std::vector<bool> eliminated_;
  bool unsat_ = false;
  // Elimination record: (var, clauses containing it) in elimination order.
  struct Elimination {
    Var var;
    std::vector<std::vector<Lit>> clauses;
  };
  std::vector<Elimination> trail_;
  PreprocessStats stats_;
};

}  // namespace itpseq::sat
