#include "sat/tracecheck.hpp"

#include <ostream>
#include <stdexcept>

namespace itpseq::sat {

void write_tracecheck(const Proof& proof, std::ostream& out) {
  if (!proof.complete())
    throw std::invalid_argument("write_tracecheck: proof incomplete");
  for (ClauseId id : proof.core()) {
    out << (id + 1);
    for (Lit l : proof.literals(id)) {
      long long v = static_cast<long long>(var(l)) + 1;
      out << ' ' << (sign(l) ? -v : v);
    }
    out << " 0";
    if (!proof.is_original(id))
      for (ClauseId c : proof.chain(id).chain) out << ' ' << (c + 1);
    out << " 0\n";
  }
}

}  // namespace itpseq::sat
