// tracecheck.hpp — export resolution proofs in TRACECHECK format.
//
// TRACECHECK is the textual proof-trace format accepted by the classic
// `tracecheck` verifier (Biere): one line per clause,
//
//   <id> <lit>* 0 <antecedent-id>* 0
//
// Original clauses have no antecedents; derived clauses list the ids of
// their resolution chain.  Only the proof core is exported.  Ids are
// 1-based as the format requires.
#pragma once

#include <iosfwd>

#include "sat/proof.hpp"

namespace itpseq::sat {

/// Write the core of `proof` (which must be complete) in TRACECHECK format.
void write_tracecheck(const Proof& proof, std::ostream& out);

}  // namespace itpseq::sat
