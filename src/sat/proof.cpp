#include "sat/proof.hpp"

#include <vector>

namespace itpseq::sat {

std::vector<ClauseId> Proof::core() const {
  std::vector<ClauseId> order;
  if (final_id_ == kNoClauseId) return order;
  // Iterative post-order DFS from the final chain.
  std::vector<std::uint8_t> mark(size(), 0);
  std::vector<ClauseId> stack{final_id_};
  while (!stack.empty()) {
    ClauseId id = stack.back();
    if (mark[id] == 2) {
      stack.pop_back();
      continue;
    }
    if (mark[id] == 1) {
      mark[id] = 2;
      order.push_back(id);
      stack.pop_back();
      continue;
    }
    mark[id] = 1;
    for (ClauseId c : chains_[id].chain)
      if (mark[c] == 0) stack.push_back(c);
  }
  return order;
}

}  // namespace itpseq::sat
