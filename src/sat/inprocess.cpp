// inprocess.cpp — in-solver simplification between searches.
//
// A round (Solver::inprocess) runs at solve entry and at level-0 restarts,
// amortized by inprocess_interval_ conflicts.  Phases, in order:
//
//   1. level-0 propagation to fixpoint + satisfied-clause removal;
//   2. subsumption + self-subsuming resolution over a transient occurrence
//      index (signature-accelerated, the preprocess.cpp machinery rebuilt
//      over the clause arena);
//   3. bounded variable elimination (BVE) with model reconstruction: a var
//      is eliminated when its non-tautological input resolvents do not
//      outnumber the clauses they replace; the replaced clauses are
//      recorded so kSat models extend back over the var;
//   4. clause vivification: re-propagate a clause's negation literal by
//      literal and strengthen it from the resulting conflict/implication;
//   5. failed-literal probing with on-the-fly hyper-binary resolution (the
//      derived binaries feed the dedicated binary-watch path).
//
// Proof safety: every rewrite is a logged resolution.  A strengthened
// clause D' = D \ {~l} gets chain [D, C] with pivot var(l) (valid because
// C \ {l} is a subset of D); each BVE resolvent gets chain [C+, C-] with
// pivot v; vivification/probing derivations resolve the starting clause
// against trail reasons in descending trail order (the analyze_final
// worklist pattern), which is exactly a trivial resolution chain.  The
// Proof object retains every clause ever logged, so deleting the solver
// side of a clause never invalidates recorded chains.
//
// Mutation safety: the occurrence index is built over live, *unsatisfied*
// clauses only.  At level 0 every reason-locked clause is satisfied by its
// implied literal, so locked clauses can never be rewritten or deleted by
// the index phases.  Deleting/strengthening is sound against the snapshot
// going stale (integrations may enqueue units that satisfy indexed
// clauses): subsumption and resolution are set-level arguments, independent
// of the current assignment.  Candidate occurrence lists are snapshotted
// before mutation loops (the stale-index lesson of
// Preprocessor::subsumption_pass); dead entries are filtered lazily.
#include <algorithm>
#include <cassert>
#include <vector>

#include "obs/trace.hpp"
#include "sat/solver.hpp"
#include "util/fault.hpp"
#include "util/mem_budget.hpp"


namespace itpseq::sat {

namespace {
constexpr int kBveGrow = 0;             // allowed clause-count growth per var
constexpr std::size_t kBveMaxOcc = 20;  // skip vars occurring more often
constexpr std::uint64_t kSubsumeTicks = 4'000'000;  // occ scans per round
constexpr std::size_t kVivifyMaxRound = 256;        // clauses per round
constexpr std::size_t kProbeMaxRound = 384;         // probes per round
constexpr std::size_t kHbrPerProbe = 16;            // binaries per probe

/// Resolve two sorted clauses on v; false iff the resolvent is tautological.
bool resolve_sorted(const std::vector<Lit>& a, const std::vector<Lit>& b,
                    Var v, std::vector<Lit>& out) {
  out.clear();
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    Lit x = a[i], y = b[j];
    if (var(x) == v) {
      ++i;
      continue;
    }
    if (var(y) == v) {
      ++j;
      continue;
    }
    if (var(x) == var(y)) {
      if (x != y) return false;  // complementary pair: tautology
      out.push_back(x);
      ++i;
      ++j;
    } else if (x < y) {
      out.push_back(x);
      ++i;
    } else {
      out.push_back(y);
      ++j;
    }
  }
  for (; i < a.size(); ++i)
    if (var(a[i]) != v) out.push_back(a[i]);
  for (; j < b.size(); ++j)
    if (var(b[j]) != v) out.push_back(b[j]);
  return true;
}

/// small \ {skip} is a subset of big?  Both sorted.
bool sorted_subset_except(const std::vector<Lit>& small,
                          const std::vector<Lit>& big, Lit skip) {
  std::size_t j = 0;
  for (Lit l : small) {
    if (l == skip) continue;
    while (j < big.size() && big[j] < l) ++j;
    if (j >= big.size() || big[j] != l) return false;
    ++j;
  }
  return true;
}
}  // namespace

/// Transient occurrence index over the live, unsatisfied clauses.  Entries
/// are parallel arrays; occ maps literal -> entry indices.  Killed entries
/// stay in occ lists and are filtered lazily (every consumer checks dead).
struct Solver::OccIndex {
  std::vector<CRef> cref;
  std::vector<std::vector<Lit>> lits;  // sorted literal sets
  std::vector<std::uint64_t> sig;      // Bloom signature over (lit & 63)
  std::vector<std::uint8_t> learned;
  std::vector<std::uint8_t> dead;
  std::vector<std::vector<std::uint32_t>> occ;

  std::size_t size() const { return cref.size(); }
  static std::uint64_t sig_of(const std::vector<Lit>& ls) {
    std::uint64_t s = 0;
    for (Lit l : ls) s |= 1ull << (l & 63);
    return s;
  }
  void add(CRef cr, std::vector<Lit> ls, bool lrn) {
    const std::uint32_t i = static_cast<std::uint32_t>(cref.size());
    cref.push_back(cr);
    sig.push_back(sig_of(ls));
    learned.push_back(lrn ? 1 : 0);
    dead.push_back(0);
    for (Lit l : ls) occ[l].push_back(i);
    lits.push_back(std::move(ls));
  }
  void kill(std::uint32_t i) { dead[i] = 1; }
};

ClauseId Solver::log_derived(const std::vector<Lit>& lits,
                             ResolutionChain&& chain) {
  if (!proof_) return kNoClauseId;
  assert(!chain.chain.empty());
  // A chain of one clause performed no resolution: the "derivation" is the
  // clause itself — reuse its id instead of logging a duplicate.
  if (chain.chain.size() == 1) return chain.chain[0];
  if (lits.empty()) {
    if (!proof_->complete()) proof_->set_final(std::move(chain));
    return proof_->final_id();
  }
  return proof_->add_learned(lits, std::move(chain));
}

Solver::CRef Solver::integrate_clause(std::vector<Lit> lits, ClauseId id,
                                      bool learned, std::uint32_t lbd) {
  assert(trail_lim_.empty());
  assert(!lits.empty());
#ifdef ITPSEQ_CHECKED
  // Freeze contract: a clause entering the live database must not mention a
  // BVE-eliminated variable — propagation could assign it behind model
  // reconstruction's back.  Callers restore (add_clause) or skip
  // (inprocessing phases iterate non-eliminated vars) before getting here.
  for (Lit l : lits)
    ITPSEQ_CHECK(!eliminated_[var(l)],
                 "clause integrated while mentioning an eliminated variable");
#endif
  for (Lit l : lits)
    if (value(l) == LBool::kTrue) return kNoCRef;  // satisfied at level 0
  std::stable_partition(lits.begin(), lits.end(),
                        [&](Lit l) { return value(l) != LBool::kFalse; });
  std::size_t num_free = 0;
  while (num_free < lits.size() && value(lits[num_free]) != LBool::kFalse)
    ++num_free;
  CRef cr = alloc_clause(lits, id, learned, lbd);
  if (num_free == 0) {  // all literals false at level 0: root conflict
    if (ok_) {
      ok_ = false;
      root_conflict_ = cr;
    }
    return cr;
  }
  if (learned && lits.size() > 1) {
    cls(cr).set_activity(static_cast<float>(clause_inc_));
    learned_list_.push_back(cr);
  }
  if (num_free == 1) {
    // Unit under the level-0 assignment: enqueue with this clause as the
    // (permanent) reason; like learned units it stays unattached.
    enqueue(lits[0], cr);
    return cr;
  }
  attach(cr);
  return cr;
}

bool Solver::install_derived(std::vector<Lit> lits, ResolutionChain&& chain,
                             bool learned, std::uint32_t lbd) {
  ClauseId id = log_derived(lits, std::move(chain));
  if (lits.empty()) {
    ok_ = false;
    return false;
  }
  integrate_clause(std::move(lits), id, learned, lbd);
  return ok_;
}

std::vector<Lit> Solver::resolve_with_reasons(CRef start, Lit keep,
                                              ResolutionChain& chain) {
  // Resolve away every false literal that has a reason, processing by
  // descending trail position so each reason only introduces literals
  // assigned earlier — the left-to-right trivial chain analyze_final and
  // minimize_learned use.  Literals without a reason (decisions, unassigned
  // literals) and `keep` survive into the result.
  std::vector<Lit> kept;
  std::vector<Var> touched;
  std::vector<std::uint32_t> work;  // trail positions, max-heap
  auto visit = [&](Lit q) {
    Var v = var(q);
    if (seen_[v]) return;
    seen_[v] = 1;
    touched.push_back(v);
    if (q != keep && value(q) == LBool::kFalse &&
        var_data_[v].reason != kNoCRef) {
      work.push_back(var_data_[v].trail_pos);
      std::push_heap(work.begin(), work.end());
    } else {
      kept.push_back(q);
    }
  };
  {
    Cls c = cls(start);
    if (proof_) chain.chain.push_back(c.id());
    for (Lit q : c) visit(q);
  }
  while (!work.empty()) {
    std::pop_heap(work.begin(), work.end());
    std::uint32_t pos = work.back();
    work.pop_back();
    Var v = var(trail_[pos]);
    CRef r = var_data_[v].reason;
    assert(r != kNoCRef);
    Cls rc = cls(r);
    if (proof_) {
      chain.chain.push_back(rc.id());
      chain.pivots.push_back(v);
    }
    for (Lit q : rc)
      if (var(q) != v) visit(q);
  }
  for (Var v : touched) seen_[v] = 0;
  return kept;
}

void Solver::restore_var(Var v) {
  assert(trail_lim_.empty());
  assert(eliminated_[v]);
  for (std::size_t i = elim_trail_.size(); i-- > 0;) {
    ElimRecord& rec = elim_trail_[i];
    if (!rec.active || rec.v != v) continue;
    rec.active = false;
    eliminated_[v] = 0;
    frozen_[v] = 1;  // the caller cares about v: never eliminate it again
    ++stats_.vars_restored;
    if (!heap_contains(v)) heap_insert(v);
    // Cascade: the recorded clauses may mention vars eliminated *after* v
    // (those were still live when v went away).  Reinstalling such a clause
    // would break the invariant that no live clause mentions an eliminated
    // var — propagation could assign the var behind reconstruction's back —
    // so restore the dependents first.  (elim_trail_ entries are only ever
    // deactivated, never erased, so recursion is safe.)
    for (const ElimClause& ec : rec.clauses)
      for (Lit l : ec.lits)
        // itpseq-lint: allow(L4) the recursion only deactivates other trail records; rec.clauses is never resized (see above)
        if (eliminated_[var(l)]) restore_var(var(l));
    // Re-install the recorded clauses under their original proof ids — no
    // new proof steps; the formula is back to (an equivalent of) what the
    // caller built.
    for (ElimClause& ec : rec.clauses)
      integrate_clause(std::move(ec.lits), ec.id, /*learned=*/false, 0);
    rec.clauses.clear();
    return;
  }
  assert(false && "restore_var: no active elimination record");
}

void Solver::extend_model_over_eliminated(std::vector<LBool>& model) const {
  // Reverse elimination order: when v's record is processed, every var
  // eliminated after v (which may appear in v's recorded clauses) already
  // has its value.  Default v to false; only clauses containing v
  // positively can then be violated, and flipping v satisfies them (every
  // clause with ~v is satisfied elsewhere — its resolvents against the
  // violated clause are satisfied by the model, and the violated clause
  // contributes no true literal to them).
  for (auto it = elim_trail_.rbegin(); it != elim_trail_.rend(); ++it) {
    if (!it->active) continue;
    Var v = it->v;
    model[v] = LBool::kFalse;
    for (const ElimClause& ec : it->clauses) {
      bool sat = false;
      Lit vlit = kNoLit;
      for (Lit l : ec.lits) {
        if (var(l) == v) {
          vlit = l;
          continue;
        }
        if (lbool_xor(model[var(l)], sign(l)) == LBool::kTrue) {
          sat = true;
          break;
        }
      }
      if (!sat && vlit != kNoLit && !sign(vlit)) {
        model[v] = LBool::kTrue;
        break;
      }
    }
  }
}

bool Solver::maybe_inprocess() {
  if (!ok_) return false;
  if (!inprocess_on_ || arena_.empty()) return true;
  assert(trail_lim_.empty());
  if (inprocessed_once_ &&
      stats_.conflicts - last_inprocess_conflicts_ < inprocess_interval_)
    return true;
  {
    // Under memory pressure an inprocessing round is the wrong move: the
    // occurrence index is the solver's largest transient allocation.  Skip
    // rounds from the soft rung of the ladder up (see util/mem_budget.hpp).
    util::MemoryBudget& mb = util::MemoryBudget::instance();
    if (mb.limited()) {
      mb.poll();
      if (mb.soft()) return true;
    }
  }
  bool alive = inprocess();
  if (!alive && proof_ && !proof_->complete() && root_conflict_ != kNoCRef)
    analyze_final(root_conflict_);
  return alive;
}

bool Solver::inprocess() {
  ITPSEQ_FAULT_POINT("sat.inprocess");
  assert(trail_lim_.empty());
  inprocessed_once_ = true;
  last_inprocess_conflicts_ = stats_.conflicts;
  ++stats_.inprocess_rounds;
  const SolverStats before = stats_;
  obs::Span span("inprocess", {{"arena_bytes", arena_bytes()}});
  if (CRef confl = propagate(); confl != kNoCRef) {
    analyze_final(confl);
    ok_ = false;
    return false;
  }
  remove_satisfied();
  if (!inprocess_subsume_eliminate()) return false;
  // The occurrence index is gone; prune deleted learned clauses and compact
  // before the probing phases (they collect CRefs).
  learned_list_.erase(
      std::remove_if(learned_list_.begin(), learned_list_.end(),
                     [&](CRef cr) { return cls(cr).deleted(); }),
      learned_list_.end());
  maybe_gc();
  if (!inprocess_vivify()) return false;
  if (!inprocess_probe()) return false;
  if (CRef confl = propagate(); confl != kNoCRef) {
    analyze_final(confl);
    ok_ = false;
    return false;
  }
  remove_satisfied();  // fold derived units in (also prunes learned_list_)
  if (obs::enabled()) {
    obs::counters().inprocess_rounds.fetch_add(1, std::memory_order_relaxed);
    obs::emit("sat_inprocess",
              {{"subsumed", stats_.subsumed - before.subsumed},
               {"strengthened", stats_.strengthened - before.strengthened},
               {"vars_eliminated",
                stats_.vars_eliminated - before.vars_eliminated},
               {"vivified", stats_.vivified - before.vivified},
               {"failed_literals",
                stats_.failed_literals - before.failed_literals},
               {"hyper_binaries", stats_.hyper_binaries - before.hyper_binaries},
               {"arena_bytes", arena_bytes()}});
  }
#ifdef ITPSEQ_CHECKED
  checked_audit_freeze();
#endif
  return true;
}

#ifdef ITPSEQ_CHECKED
// End-of-inprocess invariant audit (ITPSEQ_CHECKED builds only): one O(vars)
// pass over the freeze/elimination state and one O(arena) walk over the
// clause store.  Catches any phase that eliminated a frozen variable or
// left a live clause mentioning an eliminated one — the two ways BVE model
// reconstruction (and with it every published certificate) goes wrong.
void Solver::checked_audit_freeze() const {
  for (Var v = 0; v < static_cast<Var>(num_vars()); ++v)
    ITPSEQ_CHECK(!(frozen_[v] && eliminated_[v]),
                 "frozen variable is eliminated after an inprocessing round");
  for (CRef cr = 0; cr < static_cast<CRef>(arena_.size());) {
    const std::uint32_t w0 = arena_[cr];
    const std::uint32_t sz = w0 >> kFlagBits;
    if (!(w0 & kDeletedFlag))
      for (std::uint32_t i = 0; i < sz; ++i)
        ITPSEQ_CHECK(
            !eliminated_[var(arena_[cr + kHeaderWords + i])],
            "live clause mentions an eliminated variable after inprocessing");
    cr += kHeaderWords + sz;
  }
}
#endif

bool Solver::inprocess_subsume_eliminate() {
  assert(ok_ && trail_lim_.empty());
  OccIndex ix;
  ix.occ.resize(2 * num_vars());
  for (CRef cr = 0; cr < static_cast<CRef>(arena_.size());) {
    Cls c = cls(cr);
    const std::uint32_t span = kHeaderWords + c.size();
    if (!c.deleted() && c.size() >= 2) {
      bool satv = false;
      for (Lit l : c)
        if (value(l) == LBool::kTrue) {
          satv = true;
          break;
        }
      if (!satv) {
        std::vector<Lit> ls(c.begin(), c.end());
        std::sort(ls.begin(), ls.end());
        ix.add(cr, std::move(ls), c.learned());
      }
    }
    cr += span;
  }
  std::uint64_t ticks = 0;
  for (int iter = 0; iter < 2; ++iter) {
    const std::uint64_t before =
        stats_.subsumed + stats_.strengthened + stats_.vars_eliminated;
    // Entries appended during the pass (strengthened clauses, resolvents)
    // are processed too: ix.size() is re-read each iteration.
    for (std::size_t i = 0; i < ix.size() && ticks < kSubsumeTicks; ++i) {
      if (ix.dead[i]) continue;
      if (!subsume_with(ix, i, ticks)) return false;
    }
    if (!std::getenv("DBG_NOBVE"))
      for (Var v = 0;
           v < static_cast<Var>(num_vars()) && ticks < kSubsumeTicks; ++v) {
        ticks += 8;  // baseline cost of considering a variable
        if (!try_eliminate(ix, v)) return false;
      }
    if (stats_.subsumed + stats_.strengthened + stats_.vars_eliminated ==
        before)
      break;
  }
  return true;
}

void Solver::promote_to_input(CRef cr) {
  Cls c = cls(cr);
  if (!c.learned()) return;
  c.clear_learned();
  learned_list_.erase(
      std::remove(learned_list_.begin(), learned_list_.end(), cr),
      learned_list_.end());
}

bool Solver::subsume_with(OccIndex& ix, std::size_t i, std::uint64_t& ticks) {
  // Clause i as the subsumer: backward subsumption (C ⊆ D drops D) and
  // self-subsuming resolution (C \ {l} ⊆ D with ~l ∈ D strengthens D).
  // Copy the subsumer: strengthen_in_index appends to ix.lits, which can
  // reallocate — a reference would go stale mid-loop.
  const std::vector<Lit> c = ix.lits[i];
  const std::uint64_t csig = ix.sig[i];
  Lit best = c[0];
  for (Lit l : c)
    if (ix.occ[l].size() < ix.occ[best].size()) best = l;
  {
    // Snapshot the candidate list; the loop mutates occurrence state.
    const std::vector<std::uint32_t> cands = ix.occ[best];
    for (std::uint32_t di : cands) {
      ++ticks;
      if (di == i || ix.dead[di]) continue;
      if (ix.lits[di].size() < c.size()) continue;
      if ((csig & ~ix.sig[di]) != 0) continue;
      if (!sorted_subset_except(c, ix.lits[di], kNoLit)) continue;
      // A learned subsumer deleting an input clause becomes the constraint's
      // only carrier: promote it to input first, or BVE may later drop it.
      if (ix.learned[i] && !ix.learned[di]) {
        promote_to_input(ix.cref[i]);
        ix.learned[i] = 0;
      }
      delete_clause(ix.cref[di]);
      ix.kill(di);
      ++stats_.subsumed;
    }
  }
    for (Lit l : c) {
    std::uint64_t sig_wo = 0;
    for (Lit m : c)
      if (m != l) sig_wo |= 1ull << (m & 63);
    const std::vector<std::uint32_t> cands = ix.occ[neg(l)];
    for (std::uint32_t di : cands) {
      ++ticks;
      if (di == i || ix.dead[di]) continue;
      if (ix.lits[di].size() < c.size()) continue;
      if ((sig_wo & ~ix.sig[di]) != 0) continue;
      if (!sorted_subset_except(c, ix.lits[di], l)) continue;
      strengthen_in_index(ix, di, neg(l),
                          proof_ ? cls(ix.cref[i]).id() : kNoClauseId);
      if (!ok_) return false;
    }
  }
  return true;
}

void Solver::strengthen_in_index(OccIndex& ix, std::size_t di, Lit drop,
                                 ClauseId subsumer_id) {
  CRef old = ix.cref[di];
  const bool was_learned = ix.learned[di] != 0;
  std::vector<Lit> nl;
  nl.reserve(ix.lits[di].size() - 1);
  for (Lit m : ix.lits[di])
    if (m != drop) nl.push_back(m);
  ResolutionChain chain;
  if (proof_) {
    // D' = D ⊗_{var(drop)} C: D contributes everything but `drop`, and
    // C \ {~drop} ⊆ D' adds nothing new.
    chain.chain = {cls(old).id(), subsumer_id};
    chain.pivots = {var(drop)};
  }
  std::uint32_t lbd =
      was_learned
          ? std::max<std::uint32_t>(
                1, std::min<std::uint32_t>(
                       cls(old).lbd(), static_cast<std::uint32_t>(nl.size())))
          : 0;
  delete_clause(old);
  ix.kill(static_cast<std::uint32_t>(di));
  ++stats_.strengthened;
  ClauseId nid = log_derived(nl, std::move(chain));
  if (nl.empty()) {
    ok_ = false;
    return;
  }
  CRef ncr = integrate_clause(nl, nid, was_learned, lbd);
  if (!ok_ || ncr == kNoCRef) return;
  // Index the replacement for further passes — unless installing it made it
  // a unit reason (locked) or satisfied it (both must stay untouched).
  for (Lit m : nl)
    if (value(m) == LBool::kTrue) return;
  if (locked(ncr)) return;
  ix.add(ncr, std::move(nl), was_learned);
}

bool Solver::try_eliminate(OccIndex& ix, Var v) {
  if (frozen_[v] || eliminated_[v] || value_var(v) != LBool::kUndef)
    return true;
  const Lit pl = mk_lit(v, false), nl = mk_lit(v, true);
  std::vector<std::uint32_t> pos, neg_c, learned_occ;
  for (std::uint32_t i : ix.occ[pl]) {
    if (ix.dead[i]) continue;
    (ix.learned[i] ? learned_occ : pos).push_back(i);
  }
  for (std::uint32_t i : ix.occ[nl]) {
    if (ix.dead[i]) continue;
    (ix.learned[i] ? learned_occ : neg_c).push_back(i);
  }
  if (pos.empty() && neg_c.empty() && learned_occ.empty()) return true;
  if (pos.size() > kBveMaxOcc || neg_c.size() > kBveMaxOcc) return true;
  // All non-tautological resolvents of input clauses; give up on v unless
  // they fit in the room the replaced clauses leave (+ grow).  Elimination
  // must be all-or-nothing: skipping even one resolvent would be unsound.
  struct Res {
    std::vector<Lit> lits;
    std::uint32_t pi, ni;
  };
  std::vector<Res> res;
  const std::size_t budget = pos.size() + neg_c.size() + kBveGrow;
  std::vector<Lit> scratch;
  for (std::uint32_t pi : pos)
    for (std::uint32_t ni : neg_c) {
      if (!resolve_sorted(ix.lits[pi], ix.lits[ni], v, scratch)) continue;
      if (res.size() >= budget) return true;  // would grow the database
      res.push_back({scratch, pi, ni});
    }
  // Commit: record + delete the originals (learned clauses with v are
  // simply dropped — they are consequences of the input and carry no
  // reconstruction obligation), then install the logged resolvents.
  ITPSEQ_CHECK(!frozen_[v], "frozen variable selected for elimination");
  eliminated_[v] = 1;
  ++stats_.vars_eliminated;
  ElimRecord rec;
  rec.v = v;
  for (std::uint32_t i : pos)
    rec.clauses.push_back({ix.lits[i], cls(ix.cref[i]).id()});
  for (std::uint32_t i : neg_c)
    rec.clauses.push_back({ix.lits[i], cls(ix.cref[i]).id()});
  for (std::uint32_t i : pos) {
    delete_clause(ix.cref[i]);
    ix.kill(i);
  }
  for (std::uint32_t i : neg_c) {
    delete_clause(ix.cref[i]);
    ix.kill(i);
  }
  for (std::uint32_t i : learned_occ) {
    delete_clause(ix.cref[i]);
    ix.kill(i);
  }
  elim_trail_.push_back(std::move(rec));
  for (Res& r : res) {
    ResolutionChain chain;
    if (proof_) {
      chain.chain = {cls(ix.cref[r.pi]).id(), cls(ix.cref[r.ni]).id()};
      chain.pivots = {v};
    }
    ClauseId nid = log_derived(r.lits, std::move(chain));
    if (r.lits.empty()) {
      ok_ = false;
      return false;
    }
    CRef ncr = integrate_clause(r.lits, nid, /*learned=*/false, 0);
    if (!ok_) return false;
    if (ncr == kNoCRef) continue;
    bool satv = false;
    for (Lit m : r.lits)
      if (value(m) == LBool::kTrue) {
        satv = true;
        break;
      }
    if (satv || locked(ncr)) continue;
    ix.add(ncr, std::move(r.lits), false);
  }
  return true;
}

bool Solver::inprocess_vivify() {
  assert(trail_lim_.empty());
  if (CRef confl = propagate(); confl != kNoCRef) {
    analyze_final(confl);
    ok_ = false;
    return false;
  }
  // Candidates: live unsatisfied input clauses of size >= 3.  CRefs stay
  // valid across the loop (allocation never moves arena offsets and GC is
  // not called here).
  std::vector<CRef> cand;
  for (CRef cr = 0; cr < static_cast<CRef>(arena_.size());) {
    Cls c = cls(cr);
    const std::uint32_t span = kHeaderWords + c.size();
    if (!c.deleted() && !c.learned() && c.size() >= 3) cand.push_back(cr);
    cr += span;
  }
  if (cand.empty()) return true;
  const std::uint64_t props_budget =
      stats_.propagations + arena_.size() / 2 + 10000;
  const std::size_t n = std::min(cand.size(), kVivifyMaxRound);
  std::size_t k = 0;
  for (; k < n && stats_.propagations < props_budget; ++k) {
    CRef cr = cand[(vivify_head_ + k) % cand.size()];
    Cls c = cls(cr);
    if (c.deleted() || c.size() < 3) continue;
    bool satv = false;
    for (Lit l : c)
      if (value(l) == LBool::kTrue) {
        satv = true;
        break;
      }
    if (satv) continue;
    std::vector<Lit> ls(c.begin(), c.end());
    // Detach so the clause cannot propagate against itself while its
    // negation is being decided.
    detach(cr);
    std::vector<Lit> kept;
    ResolutionChain chain;
    bool derived = false;
    for (Lit l : ls) {
      const LBool vl = value(l);
      if (vl == LBool::kTrue) {
        // ~(prefix) implies l: C strengthens to the reason-side derivation
        // that keeps l.
        CRef r = var_data_[var(l)].reason;
        if (r == kNoCRef) break;  // defensive: cannot strengthen
        kept = resolve_with_reasons(r, l, chain);
        derived = true;
        break;
      }
      if (vl == LBool::kFalse) continue;  // removal candidate: skip deciding
      trail_lim_.push_back(static_cast<std::uint32_t>(trail_.size()));
      enqueue(neg(l), kNoCRef);
      if (CRef confl = propagate(); confl != kNoCRef) {
        kept = resolve_with_reasons(confl, kNoLit, chain);
        derived = true;
        break;
      }
    }
    if (!derived) {
      // No conflict/implication, but literals false under the probe (or at
      // level 0) have reasons — resolve them out of C itself.
      for (Lit l : ls)
        if (value(l) == LBool::kFalse &&
            var_data_[var(l)].reason != kNoCRef) {
          kept = resolve_with_reasons(cr, kNoLit, chain);
          derived = true;
          break;
        }
    }
    backtrack(0);
    if (derived && kept.size() < ls.size()) {
      c = cls(cr);  // re-fetch: the probe may not allocate, but be safe
      c.set_deleted();  // already detached; delete_clause would re-scan
      wasted_ += kHeaderWords + c.size();
      ++stats_.vivified;
      if (!install_derived(std::move(kept), std::move(chain),
                           /*learned=*/false, 0))
        return false;
      if (CRef confl = propagate(); confl != kNoCRef) {
        analyze_final(confl);
        ok_ = false;
        return false;
      }
    } else {
      attach(cr);  // watch positions 0/1 are unchanged and still valid
    }
  }
  vivify_head_ = (vivify_head_ + k) % cand.size();
  return true;
}

bool Solver::inprocess_probe() {
  assert(trail_lim_.empty());
  if (CRef confl = propagate(); confl != kNoCRef) {
    analyze_final(confl);
    ok_ = false;
    return false;
  }
  const std::size_t nv = num_vars();
  if (nv == 0) return true;
  const std::uint64_t props_budget =
      stats_.propagations + arena_.size() / 2 + 10000;
  std::size_t probes = 0, k = 0;
  struct Derived {
    std::vector<Lit> lits;
    ResolutionChain chain;
  };
  for (; k < nv && probes < kProbeMaxRound && stats_.propagations < props_budget;
       ++k) {
    const Var v = static_cast<Var>((probe_head_ + k) % nv);
    if (value_var(v) != LBool::kUndef || eliminated_[v]) continue;
    for (int s = 0; s < 2; ++s) {
      if (value_var(v) != LBool::kUndef) break;  // prior polarity failed
      const Lit l = mk_lit(v, s != 0);
      ++probes;
      ++stats_.probed;
      trail_lim_.push_back(static_cast<std::uint32_t>(trail_.size()));
      enqueue(l, kNoCRef);
      CRef confl = propagate();
      if (confl != kNoCRef) {
        // Failed literal: the conflict resolves (before backtracking, while
        // reasons are live) to a clause over the only decision, i.e. {~l} —
        // or to the empty clause, refuting the formula.
        ResolutionChain chain;
        std::vector<Lit> kept = resolve_with_reasons(confl, kNoLit, chain);
        backtrack(0);
        ++stats_.failed_literals;
        if (!install_derived(std::move(kept), std::move(chain),
                             /*learned=*/true, 1))
          return false;
        if (CRef c2 = propagate(); c2 != kNoCRef) {
          analyze_final(c2);
          ok_ = false;
          return false;
        }
        break;
      }
      // Hyper-binary resolution: an implied q whose reason is a long clause
      // compresses to the binary (~l ∨ q); future propagation takes the
      // dedicated binary-watch path instead of walking the long clause.
      std::vector<Derived> derived;
      for (std::size_t t = trail_lim_.back() + 1;
           t < trail_.size() && derived.size() < kHbrPerProbe; ++t) {
        const Lit q = trail_[t];
        CRef r = var_data_[var(q)].reason;
        if (r == kNoCRef || cls(r).size() <= 2) continue;
        bool dup = false;
        for (const BinWatcher& bw : bin_watches_[neg(l)])
          if (bw.other == q) {
            dup = true;
            break;
          }
        if (dup) continue;
        Derived d;
        d.lits = resolve_with_reasons(r, q, d.chain);
        assert(d.lits.size() <= 2);
        derived.push_back(std::move(d));
      }
      backtrack(0);
      for (Derived& d : derived) {
        if (d.lits.size() == 2)
          ++stats_.hyper_binaries;
        else
          ++stats_.failed_literals;  // collapsed to a unit (or empty)
        // Read the size before the call: function arguments evaluate in an
        // unspecified order, so `d.lits.size()` in the same argument list
        // as `std::move(d.lits)` may see the moved-from (empty) vector and
        // mis-grade a hyper-binary as LBD 1.
        const unsigned lbd = d.lits.size() == 2 ? 2 : 1;
        if (!install_derived(std::move(d.lits), std::move(d.chain),
                             /*learned=*/true, lbd))
          return false;
      }
      if (!derived.empty()) {
        if (CRef c2 = propagate(); c2 != kNoCRef) {
          analyze_final(c2);
          ok_ = false;
          return false;
        }
      }
    }
  }
  probe_head_ = (probe_head_ + k) % nv;
  return true;
}

}  // namespace itpseq::sat
