#include "sat/preprocess.hpp"

#include <algorithm>

namespace itpseq::sat {

Preprocessor::Preprocessor(unsigned num_vars)
    : num_vars_(num_vars),
      occ_(2 * static_cast<std::size_t>(num_vars)),
      frozen_(num_vars, false),
      eliminated_(num_vars, false) {}

std::uint64_t Preprocessor::sig_of(const std::vector<Lit>& lits) {
  std::uint64_t s = 0;
  for (Lit l : lits) s |= 1ull << (l & 63);
  return s;
}

bool Preprocessor::tautology(const std::vector<Lit>& lits) const {
  for (std::size_t i = 0; i + 1 < lits.size(); ++i)
    if (lits[i + 1] == neg(lits[i])) return true;  // lits sorted
  return false;
}

void Preprocessor::add_clause(std::vector<Lit> lits) {
  std::sort(lits.begin(), lits.end());
  lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
  if (tautology(lits)) return;
  if (lits.empty()) {
    unsat_ = true;
    return;
  }
  ++stats_.clauses_in;
  Clause c;
  c.signature = sig_of(lits);
  c.lits = std::move(lits);
  db_.push_back(std::move(c));
  attach(db_.size() - 1);
}

void Preprocessor::freeze(Var v) { frozen_[v] = true; }

void Preprocessor::attach(std::size_t idx) {
  for (Lit l : db_[idx].lits) occ_[l].push_back(idx);
}

void Preprocessor::detach(std::size_t idx) {
  for (Lit l : db_[idx].lits) {
    auto& v = occ_[l];
    v.erase(std::remove(v.begin(), v.end(), idx), v.end());
  }
}

void Preprocessor::remove_clause(std::size_t idx) {
  detach(idx);
  db_[idx].deleted = true;
  db_[idx].lits.clear();
}

bool Preprocessor::add_derived(std::vector<Lit> lits) {
  std::sort(lits.begin(), lits.end());
  lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
  if (tautology(lits)) return false;
  if (lits.empty()) {
    unsat_ = true;
    return true;
  }
  Clause c;
  c.signature = sig_of(lits);
  c.lits = std::move(lits);
  db_.push_back(std::move(c));
  attach(db_.size() - 1);
  return true;
}

bool Preprocessor::subsumes(const Clause& c, const Clause& d) {
  if (c.lits.size() > d.lits.size()) return false;
  if (c.signature & ~d.signature) return false;
  // Both sorted: subset test by merge.
  std::size_t i = 0, j = 0;
  while (i < c.lits.size() && j < d.lits.size()) {
    if (c.lits[i] == d.lits[j]) {
      ++i;
      ++j;
    } else if (c.lits[i] > d.lits[j]) {
      ++j;
    } else {
      return false;
    }
  }
  return i == c.lits.size();
}

Lit Preprocessor::self_subsume_lit(const Clause& c, const Clause& d) {
  // Find l in c with: (c \ {l}) ∪ {~l} ⊆ d, i.e. c ⊆ d when l is flipped.
  if (c.lits.size() > d.lits.size()) return kNoLit;
  Lit flipped = kNoLit;
  std::size_t i = 0, j = 0;
  while (i < c.lits.size()) {
    if (j >= d.lits.size()) return kNoLit;
    Lit cl = c.lits[i], dl = d.lits[j];
    if (cl == dl) {
      ++i;
      ++j;
    } else if (neg(cl) == dl && flipped == kNoLit) {
      flipped = cl;
      ++i;
      ++j;
    } else if (cl > dl) {
      ++j;
    } else {
      return kNoLit;
    }
  }
  return flipped;
}

bool Preprocessor::subsumption_pass() {
  bool changed = false;
  // Use the shortest occurrence list of each clause's literals to find
  // subsumption candidates.
  for (std::size_t i = 0; i < db_.size(); ++i) {
    if (db_[i].deleted) continue;
    // Pick literal with fewest occurrences.
    Lit best = db_[i].lits[0];
    for (Lit l : db_[i].lits)
      if (occ_[l].size() < occ_[best].size()) best = l;
    // Candidates: clauses containing `best` (subsumption) …
    std::vector<std::size_t> cands = occ_[best];
    for (std::size_t j : cands) {
      if (j == i || db_[j].deleted || db_[i].deleted) continue;
      if (subsumes(db_[i], db_[j])) {
        remove_clause(j);
        ++stats_.subsumed;
        changed = true;
      }
    }
    if (db_[i].deleted) continue;
    // … and clauses containing ~l for some l in c (self-subsumption).
    for (Lit l : std::vector<Lit>(db_[i].lits)) {
      if (db_[i].deleted) break;
      std::vector<std::size_t> neg_cands = occ_[neg(l)];
      for (std::size_t j : neg_cands) {
        if (db_[j].deleted || db_[i].deleted) continue;
        Lit f = self_subsume_lit(db_[i], db_[j]);
        if (f == kNoLit) continue;
        // Strengthen d by removing ~f (resolution of c and d on f).
        std::vector<Lit> strengthened;
        for (Lit q : db_[j].lits)
          if (q != neg(f)) strengthened.push_back(q);
        remove_clause(j);
        ++stats_.strengthened;
        changed = true;
        add_derived(std::move(strengthened));
        if (unsat_) return true;
      }
    }
  }
  return changed;
}

bool Preprocessor::eliminate_var(Var v, int grow, unsigned max_occ) {
  if (frozen_[v] || eliminated_[v]) return false;
  // Copy the occurrence lists: the commit below detaches clauses and
  // attaches resolvents, both of which mutate (and may reallocate) the very
  // occ_ entries these lists come from.
  const std::vector<std::size_t> pos = occ_[mk_lit(v, false)];
  const std::vector<std::size_t> neg_occ = occ_[mk_lit(v, true)];
  if (pos.size() > max_occ || neg_occ.size() > max_occ) return false;

  // Build resolvents; bail out if the database would grow too much.
  std::vector<std::vector<Lit>> resolvents;
  long budget = static_cast<long>(pos.size() + neg_occ.size()) + grow;
  for (std::size_t pi : pos) {
    for (std::size_t ni : neg_occ) {
      std::vector<Lit> r;
      for (Lit l : db_[pi].lits)
        if (var(l) != v) r.push_back(l);
      for (Lit l : db_[ni].lits)
        if (var(l) != v) r.push_back(l);
      std::sort(r.begin(), r.end());
      r.erase(std::unique(r.begin(), r.end()), r.end());
      if (tautology(r)) continue;
      resolvents.push_back(std::move(r));
      if (static_cast<long>(resolvents.size()) > budget) return false;
    }
  }

  // Commit: record original clauses for model extension, then swap.
  Elimination e;
  e.var = v;
  std::vector<std::size_t> to_remove;
  for (std::size_t idx : pos) to_remove.push_back(idx);
  for (std::size_t idx : neg_occ) to_remove.push_back(idx);
  for (std::size_t idx : to_remove) e.clauses.push_back(db_[idx].lits);
  trail_.push_back(std::move(e));
  for (std::size_t idx : to_remove) remove_clause(idx);
  for (auto& r : resolvents) {
    add_derived(std::move(r));
    if (unsat_) return true;
  }
  eliminated_[v] = true;
  ++stats_.vars_eliminated;
  return true;
}

void Preprocessor::run(int grow, unsigned max_occ) {
  if (unsat_) return;
  bool changed = true;
  int rounds = 0;
  while (changed && !unsat_ && rounds++ < 8) {
    changed = subsumption_pass();
    if (unsat_) break;
    for (Var v = 0; v < num_vars_ && !unsat_; ++v)
      changed |= eliminate_var(v, grow, max_occ);
  }
  stats_.clauses_out = 0;
  for (const Clause& c : db_)
    if (!c.deleted) ++stats_.clauses_out;
}

std::vector<std::vector<Lit>> Preprocessor::clauses() const {
  std::vector<std::vector<Lit>> out;
  for (const Clause& c : db_)
    if (!c.deleted) out.push_back(c.lits);
  return out;
}

void Preprocessor::extend_model(std::vector<LBool>& model) const {
  if (model.size() < num_vars_) model.resize(num_vars_, LBool::kUndef);
  for (std::size_t i = trail_.size(); i-- > 0;) {
    const Elimination& e = trail_[i];
    // Choose a value for e.var satisfying all recorded clauses.  Every
    // clause not containing e.var positively/negatively is already
    // satisfied by the resolvent property; find any violated clause and set
    // e.var to fix it (default: false).
    LBool value = LBool::kFalse;
    for (const auto& cl : e.clauses) {
      bool sat_without = false;
      Lit v_lit = kNoLit;
      for (Lit l : cl) {
        if (var(l) == e.var) {
          v_lit = l;
          continue;
        }
        LBool lv = lbool_xor(model[var(l)], sign(l));
        if (lv == LBool::kTrue) {
          sat_without = true;
          break;
        }
      }
      if (!sat_without && v_lit != kNoLit) {
        value = sign(v_lit) ? LBool::kFalse : LBool::kTrue;
        // This clause forces the value; by the VE correctness argument the
        // remaining clauses are then satisfied as well.
      }
    }
    model[e.var] = value;
  }
}

}  // namespace itpseq::sat
