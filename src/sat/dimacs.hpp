// dimacs.hpp — DIMACS CNF reader/writer for the SAT solver.
//
// Lets the solver run as a standalone tool on standard CNF benchmarks and
// lets partitioned problems round-trip for external debugging.  An optional
// "c part <n>" comment line sets the partition label of all following
// clauses (an informal convention for interpolation test cases).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sat/types.hpp"

namespace itpseq::sat {

struct DimacsProblem {
  unsigned num_vars = 0;
  std::vector<std::vector<Lit>> clauses;
  std::vector<std::uint32_t> labels;  // per clause; 0 when unlabeled
};

/// Parse DIMACS from a stream.  Throws std::runtime_error on syntax errors.
DimacsProblem read_dimacs(std::istream& in);
DimacsProblem read_dimacs_file(const std::string& path);

/// Write DIMACS (with "c part" labels when any label is nonzero).
void write_dimacs(const DimacsProblem& p, std::ostream& out);

/// Load a problem into a solver (creating variables as needed).
/// Returns false if an empty clause made the formula trivially UNSAT.
class Solver;
bool load_dimacs(const DimacsProblem& p, Solver& solver);

}  // namespace itpseq::sat
