#include "sat/proof_check.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <vector>

namespace itpseq::sat {

namespace {
std::string clause_str(const std::set<Lit>& c) {
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (Lit l : c) {
    if (!first) os << ' ';
    first = false;
    os << (sign(l) ? "-" : "") << var(l);
  }
  os << '}';
  return os.str();
}
}  // namespace

ProofCheckResult check_proof(const Proof& proof) {
  ProofCheckResult res;
  if (!proof.complete()) {
    res.error = "proof incomplete (no final chain)";
    return res;
  }
  std::vector<std::set<Lit>> derived(proof.size());
  std::vector<bool> have(proof.size(), false);

  for (ClauseId id : proof.core()) {
    if (proof.is_original(id)) {
      derived[id] = {proof.literals(id).begin(), proof.literals(id).end()};
      have[id] = true;
      continue;
    }
    const ResolutionChain& ch = proof.chain(id);
    if (ch.chain.empty()) {
      res.error = "learned clause with empty chain";
      return res;
    }
    if (ch.pivots.size() + 1 != ch.chain.size()) {
      res.error = "chain/pivot arity mismatch";
      return res;
    }
    for (ClauseId c : ch.chain)
      if (!have[c]) {
        res.error = "chain references underived clause";
        return res;
      }
    std::set<Lit> acc = derived[ch.chain[0]];
    for (std::size_t s = 0; s + 1 < ch.chain.size(); ++s) {
      Var p = ch.pivots[s];
      const std::set<Lit>& rhs = derived[ch.chain[s + 1]];
      Lit pos = mk_lit(p, false), neg_l = mk_lit(p, true);
      bool acc_pos = acc.count(pos), acc_neg = acc.count(neg_l);
      bool rhs_pos = rhs.count(pos), rhs_neg = rhs.count(neg_l);
      if (!((acc_pos && rhs_neg) || (acc_neg && rhs_pos))) {
        std::ostringstream os;
        os << "invalid resolution on var " << p << ": " << clause_str(acc)
           << " with " << clause_str(rhs);
        res.error = os.str();
        return res;
      }
      acc.erase(pos);
      acc.erase(neg_l);
      for (Lit l : rhs)
        if (var(l) != p) acc.insert(l);
    }
    const auto& recorded = proof.literals(id);
    std::set<Lit> rec(recorded.begin(), recorded.end());
    if (acc != rec) {
      std::ostringstream os;
      os << "chain derives " << clause_str(acc) << " but recorded "
         << clause_str(rec);
      res.error = os.str();
      return res;
    }
    derived[id] = std::move(acc);
    have[id] = true;
  }
  if (!derived[proof.final_id()].empty()) {
    res.error = "final chain does not derive the empty clause";
    return res;
  }
  res.ok = true;
  return res;
}

}  // namespace itpseq::sat
