#include "sat/drat.hpp"

#include <algorithm>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>

namespace itpseq::sat {

void write_drat(const Proof& proof, std::ostream& out) {
  if (!proof.complete())
    throw std::invalid_argument("write_drat: proof incomplete");
  for (ClauseId id : proof.core()) {
    if (proof.is_original(id)) continue;
    for (Lit l : proof.literals(id)) {
      long dimacs = static_cast<long>(var(l)) + 1;
      out << (sign(l) ? -dimacs : dimacs) << ' ';
    }
    out << "0\n";
  }
}

namespace {

/// Minimal independent unit-propagation engine for RUP checking.  Shares
/// no code with the main solver (occurrence lists + full-clause scans
/// instead of watched literals).
class RupChecker {
 public:
  explicit RupChecker(unsigned num_vars)
      : assign_(num_vars, 0) {}  // 0 = unassigned, 1 = true, -1 = false

  /// Add a clause to the database; returns its id.
  std::size_t add(std::vector<Lit> lits) {
    std::size_t id = clauses_.size();
    for (Lit l : lits)
      if (var(l) >= assign_.size()) assign_.resize(var(l) + 1, 0);
    clauses_.push_back({std::move(lits), false});
    return id;
  }

  /// Remove a clause whose literal set matches (any one occurrence).
  bool remove(const std::vector<Lit>& lits) {
    std::vector<Lit> key = sorted(lits);
    for (std::size_t id = clauses_.size(); id-- > 0;) {
      if (clauses_[id].deleted) continue;
      if (sorted(clauses_[id].lits) == key) {
        clauses_[id].deleted = true;
        return true;
      }
    }
    return false;
  }

  bool value_true(Lit l) const {
    int a = assign_[var(l)];
    return sign(l) ? a == -1 : a == 1;
  }
  bool value_false(Lit l) const {
    int a = assign_[var(l)];
    return sign(l) ? a == 1 : a == -1;
  }

  void assume(Lit l) {
    assign_[var(l)] = sign(l) ? -1 : 1;
    trail_.push_back(l);
  }

  /// Propagate to fixpoint; true iff a conflict was found.
  bool propagate() {
    // Simple saturation loop: scan until no clause is unit or conflicting.
    bool changed = true;
    while (changed) {
      changed = false;
      for (const Clause& c : clauses_) {
        if (c.deleted) continue;
        Lit unit = kNoLit;
        bool satisfied = false;
        unsigned free = 0;
        for (Lit l : c.lits) {
          if (value_true(l)) {
            satisfied = true;
            break;
          }
          if (!value_false(l)) {
            ++free;
            unit = l;
          }
        }
        if (satisfied) continue;
        if (free == 0) return true;  // conflict
        if (free == 1) {
          assume(unit);
          changed = true;
        }
      }
    }
    return false;
  }

  /// RUP test: is `lits` a reverse-unit-propagation consequence?
  /// Leaves the assignment as it was on entry.
  bool rup(const std::vector<Lit>& lits) {
    std::size_t mark = trail_.size();
    bool conflict = false;
    for (Lit l : lits) {
      if (value_true(l)) {  // negation immediately inconsistent
        conflict = true;
        break;
      }
      if (!value_false(l)) assume(neg(l));
    }
    if (!conflict) conflict = propagate();
    while (trail_.size() > mark) {
      assign_[var(trail_.back())] = 0;
      trail_.pop_back();
    }
    return conflict;
  }

  /// Permanently propagate the level-0 consequences (after adding units).
  bool settle() { return propagate(); }

 private:
  struct Clause {
    std::vector<Lit> lits;
    bool deleted;
  };
  static std::vector<Lit> sorted(std::vector<Lit> v) {
    std::sort(v.begin(), v.end());
    return v;
  }

  std::vector<Clause> clauses_;
  std::vector<int> assign_;
  std::vector<Lit> trail_;
};

}  // namespace

DratCheckResult check_drat(unsigned num_vars,
                           const std::vector<std::vector<Lit>>& clauses,
                           std::istream& proof) {
  DratCheckResult res;
  RupChecker chk(num_vars);
  for (const auto& c : clauses) chk.add(c);
  if (chk.settle()) {
    res.ok = true;  // formula is conflicting by unit propagation alone
    return res;
  }

  std::string line;
  std::size_t lineno = 0;
  while (std::getline(proof, line)) {
    ++lineno;
    std::istringstream ss(line);
    std::string first;
    if (!(ss >> first)) continue;  // blank line
    bool deletion = first == "d";
    std::vector<Lit> lits;
    long v = 0;
    if (!deletion) {
      v = std::stol(first);
      if (v != 0)
        lits.push_back(mk_lit(static_cast<Var>(std::labs(v) - 1), v < 0));
    }
    while (ss >> v && v != 0)
      lits.push_back(mk_lit(static_cast<Var>(std::labs(v) - 1), v < 0));

    if (deletion) {
      if (!chk.remove(lits)) {
        res.error = "line " + std::to_string(lineno) +
                    ": deletion of a clause not in the database";
        return res;
      }
      ++res.deletions;
      continue;
    }
    if (!chk.rup(lits)) {
      res.error =
          "line " + std::to_string(lineno) + ": clause is not RUP";
      return res;
    }
    ++res.additions;
    if (lits.empty()) {
      res.ok = true;  // empty clause verified: refutation complete
      return res;
    }
    chk.add(lits);
    if (chk.settle()) {
      res.ok = true;  // level-0 conflict: refutation complete
      return res;
    }
  }
  res.error = "proof ended without deriving the empty clause";
  return res;
}

}  // namespace itpseq::sat
