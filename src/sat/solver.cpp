#include "sat/solver.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "obs/trace.hpp"
#include "util/fault.hpp"
#include "util/mem_budget.hpp"

namespace itpseq::sat {

namespace {
constexpr double kVarDecay = 0.95;
constexpr double kClauseDecay = 0.999;
constexpr double kRescaleLimit = 1e100;
constexpr float kClauseRescaleLimit = 1e20f;
constexpr std::uint32_t kRestartBase = 100;  // conflicts per Luby unit
// EMA restart mode (Glucose-style, smoothed): restart when the short-term
// glue average exceeds the long-term one by kEmaThreshold, but never more
// often than every kEmaMinConflicts conflicts.
constexpr double kEmaFastAlpha = 1.0 / 32.0;
constexpr double kEmaSlowAlpha = 1.0 / 4096.0;
constexpr double kEmaThreshold = 1.25;
constexpr std::uint64_t kEmaMinConflicts = 50;
// Trail-size blocking for kEma (Glucose): veto a glue-triggered restart when
// the current trail exceeds the trail-size EMA by kTrailBlockFactor — the
// search looks close to a satisfying assignment.  Armed only after
// kTrailBlockWarmup conflicts so the EMA is meaningful.
constexpr double kTrailAlpha = 1.0 / 4096.0;
constexpr double kTrailBlockFactor = 1.4;
constexpr std::uint64_t kTrailBlockWarmup = 100;
}  // namespace

Solver::Solver() { level_stamp_.push_back(0); }  // level 0 exists up front
Solver::~Solver() = default;

void Solver::enable_proof() {
  if (!arena_.empty())
    throw std::logic_error("enable_proof must precede add_clause");
  if (!proof_) proof_ = std::make_unique<Proof>();
}

Var Solver::new_var() {
  Var v = static_cast<Var>(assign_.size());
  assign_.push_back(LBool::kUndef);
  var_data_.push_back(VarData{});
  activity_.push_back(0.0);
  phase_.push_back(0);
  heap_pos_.push_back(kNoPos);
  seen_.push_back(0);
  level_stamp_.push_back(0);  // decision levels never exceed num_vars
  frozen_.push_back(0);
  eliminated_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  bin_watches_.emplace_back();
  bin_watches_.emplace_back();
  heap_insert(v);
  return v;
}

Solver::CRef Solver::alloc_clause(const std::vector<Lit>& lits, ClauseId id,
                                  bool learned, std::uint32_t lbd) {
  ITPSEQ_FAULT_POINT("sat.arena");
#ifdef ITPSEQ_CHECKED
  ++arena_epoch_;  // every outstanding Cls view is now stale by contract
#endif
  CRef cr = static_cast<CRef>(arena_.size());
  arena_.push_back((static_cast<std::uint32_t>(lits.size()) << kFlagBits) |
                   (learned ? kLearnedFlag : 0u));
  arena_.push_back(id);
  arena_.push_back(lbd);
  arena_.push_back(0);  // activity = 0.0f bit pattern
  arena_.insert(arena_.end(), lits.begin(), lits.end());
  const std::uint64_t bytes = arena_.size() * sizeof(std::uint32_t);
  if (bytes > stats_.peak_arena_bytes) stats_.peak_arena_bytes = bytes;
  return cr;
}

bool Solver::add_clause(std::vector<Lit> lits, std::uint32_t label) {
  assert(trail_lim_.empty() && "add_clause only at decision level 0");
  // Deduplicate and detect tautologies.
  std::sort(lits.begin(), lits.end());
  lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
  for (std::size_t i = 0; i + 1 < lits.size(); ++i)
    if (lits[i + 1] == neg(lits[i])) return true;  // tautology: skip
  for (Lit l : lits)
    if (var(l) >= num_vars()) throw std::invalid_argument("add_clause: unknown var");
  // A new clause may mention a BVE-eliminated variable; bring it back first
  // (its recorded clauses re-install under their original proof ids), so
  // the elimination never leaks into the caller-visible semantics.
  for (Lit l : lits)
    if (eliminated_[var(l)]) restore_var(var(l));
  // Skip clauses already satisfied at level 0 (sound for refutation: the
  // satisfying literal is implied by the remaining formula).
  for (Lit l : lits)
    if (value(l) == LBool::kTrue) return true;

  ++num_input_clauses_;
  ClauseId id = kNoClauseId;
  if (proof_) id = proof_->add_original(lits, label);

  if (lits.empty()) {
    ok_ = false;
    if (proof_ && !proof_->complete()) {
      ResolutionChain chain;
      chain.chain.push_back(id);
      proof_->set_final(std::move(chain));
    }
    return false;
  }

  // Order literals so that non-false ones come first (watch positions).
  std::stable_partition(lits.begin(), lits.end(),
                        [&](Lit l) { return value(l) != LBool::kFalse; });
  std::size_t num_free = 0;
  while (num_free < lits.size() && value(lits[num_free]) != LBool::kFalse) ++num_free;

  CRef cr = alloc_clause(lits, id, /*learned=*/false, /*lbd=*/0);

  if (num_free == 0) {
    // All literals false at level 0: root conflict.
    if (ok_) {
      ok_ = false;
      root_conflict_ = cr;
    }
    return false;
  }
  if (num_free == 1) {
    enqueue(lits[0], cr);
    return ok_;
  }
  attach(cr);
  return true;
}

void Solver::attach(CRef cr) {
  Cls c = cls(cr);
  assert(c.size() >= 2);
  if (c.size() == 2) {
    bin_watches_[c[0]].push_back(BinWatcher{c[1], cr});
    bin_watches_[c[1]].push_back(BinWatcher{c[0], cr});
  } else {
    watches_[c[0]].push_back(Watcher{cr, c[1]});
    watches_[c[1]].push_back(Watcher{cr, c[0]});
  }
}

void Solver::detach(CRef cr) {
  Cls c = cls(cr);
  if (c.size() == 2) {
    for (int i = 0; i < 2; ++i) {
      auto& bl = bin_watches_[c[i]];
      for (std::size_t j = 0; j < bl.size(); ++j)
        if (bl[j].cr == cr) {
          bl[j] = bl.back();
          bl.pop_back();
          break;
        }
    }
  } else {
    for (int i = 0; i < 2; ++i) {
      auto& wl = watches_[c[i]];
      for (std::size_t j = 0; j < wl.size(); ++j)
        if (wl[j].cref == cr) {
          wl[j] = wl.back();
          wl.pop_back();
          break;
        }
    }
  }
}

bool Solver::locked(CRef cr) {
  // A clause serving as a reason may not be deleted; analysis and proof
  // finalization still need its literals and id.  Long clauses keep their
  // implied literal at position 0 (propagate maintains this), but binary
  // clauses are never reordered — either literal can be the implied one.
  Cls c = cls(cr);
  auto is_reason = [&](Lit l) {
    return value(l) == LBool::kTrue && var_data_[var(l)].reason == cr;
  };
  if (is_reason(c[0])) return true;
  return c.size() == 2 && is_reason(c[1]);
}

void Solver::delete_clause(CRef cr) {
  Cls c = cls(cr);
  assert(!c.deleted());
  detach(cr);
  c.set_deleted();
  wasted_ += kHeaderWords + c.size();
}

std::uint32_t Solver::compute_lbd(const std::vector<Lit>& lits) {
  ++lbd_stamp_;
  std::uint32_t glue = 0;
  for (Lit l : lits) {
    std::uint32_t lvl = var_data_[var(l)].level;
    if (level_stamp_[lvl] != lbd_stamp_) {
      level_stamp_[lvl] = lbd_stamp_;
      ++glue;
    }
  }
  return glue;
}

void Solver::update_lbd(Cls c) {
  // Glucose-style dynamic glue: recompute when the clause participates in
  // conflict analysis (all its literals are assigned there) and keep the
  // minimum ever seen — a clause can only be promoted to a better tier.
  if (c.lbd() <= kCoreLbd) return;
  ++lbd_stamp_;
  std::uint32_t glue = 0;
  for (Lit l : c) {
    std::uint32_t lvl = var_data_[var(l)].level;
    if (level_stamp_[lvl] != lbd_stamp_) {
      level_stamp_[lvl] = lbd_stamp_;
      ++glue;
    }
  }
  if (glue < c.lbd()) c.set_lbd(glue);
}

void Solver::enqueue(Lit l, CRef reason) {
  assert(value(l) == LBool::kUndef);
  Var v = var(l);
  assign_[v] = sign(l) ? LBool::kFalse : LBool::kTrue;
  var_data_[v].reason = reason;
  var_data_[v].level = static_cast<std::uint32_t>(trail_lim_.size());
  var_data_[v].trail_pos = static_cast<std::uint32_t>(trail_.size());
  trail_.push_back(l);
}

Solver::CRef Solver::propagate() {
  if (qhead_ >= trail_.size()) return kNoCRef;  // nothing queued
  // Hot path: the arena, assignment array and each watch list are stable
  // for the duration (enqueue only appends to trail_; replacement watches
  // go to OTHER lists — ls[1] != false_lit by construction), so raw
  // pointers are hoisted out of the loops where the compiler cannot prove
  // that itself.  Stats are accumulated locally and flushed once.
  std::uint32_t* const arena = arena_.data();
  const LBool* const assigns = assign_.data();
  auto val = [assigns](Lit l) { return lbool_xor(assigns[var(l)], sign(l)); };
  std::uint64_t props = 0, bin_props = 0;
  CRef confl = kNoCRef;

  while (qhead_ < trail_.size()) {
    Lit p = trail_[qhead_++];
    Lit false_lit = neg(p);  // literal that just became false

    // Binary implications: resolved from the watcher alone, arena untouched.
    {
      const BinWatcher* bw = bin_watches_[false_lit].data();
      const std::size_t bn = bin_watches_[false_lit].size();
      for (std::size_t i = 0; i < bn; ++i) {
        const LBool v = val(bw[i].other);
        if (v == LBool::kTrue) continue;
        if (v == LBool::kFalse) {
          confl = bw[i].cr;
          goto done;
        }
        enqueue(bw[i].other, bw[i].cr);
        ++props;
        ++bin_props;
      }
    }

    {
      auto& wl = watches_[false_lit];
      Watcher* const ws = wl.data();
      const std::size_t n = wl.size();
      std::size_t i = 0, j = 0;
      while (i < n) {
        const Watcher w = ws[i];
        if (val(w.blocker) == LBool::kTrue) {
          ws[j++] = ws[i++];
          continue;
        }
        std::uint32_t* const base = arena + w.cref;
        Lit* const ls = base + kHeaderWords;
        const std::uint32_t size = base[0] >> kFlagBits;
        // Make sure the false literal is at position 1.
        if (ls[0] == false_lit) std::swap(ls[0], ls[1]);
        assert(ls[1] == false_lit);
        ++i;
        // 0th watch true: clause satisfied.
        const Lit first = ls[0];
        if (val(first) == LBool::kTrue) {
          ws[j++] = Watcher{w.cref, first};
          continue;
        }
        // Look for a replacement watch.
        bool found = false;
        for (std::uint32_t k = 2; k < size; ++k) {
          if (val(ls[k]) != LBool::kFalse) {
            std::swap(ls[1], ls[k]);
            watches_[ls[1]].push_back(Watcher{w.cref, first});
            found = true;
            break;
          }
        }
        if (found) continue;  // watcher moved away
        // Clause is unit or conflicting.
        ws[j++] = Watcher{w.cref, first};
        if (val(first) == LBool::kFalse) {
          // Conflict: copy remaining watchers and bail out.
          while (i < n) ws[j++] = ws[i++];
          wl.resize(j);
          confl = w.cref;
          goto done;
        }
        enqueue(first, w.cref);
        ++props;
      }
      wl.resize(j);
    }
  }
done:
  if (confl != kNoCRef) qhead_ = trail_.size();
  stats_.propagations += props;
  stats_.bin_propagations += bin_props;
  return confl;
}

void Solver::bump_var(Var v) {
  activity_[v] += var_inc_;
  if (activity_[v] > kRescaleLimit) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  if (heap_contains(v)) heap_up(heap_pos_[v]);
}

void Solver::decay_var_activity() { var_inc_ /= kVarDecay; }

void Solver::bump_clause(Cls c) {
  c.set_activity(c.activity() + static_cast<float>(clause_inc_));
  if (c.activity() > kClauseRescaleLimit) {
    for (CRef cr : learned_list_) {
      Cls lc = cls(cr);
      lc.set_activity(lc.activity() * 1e-20f);
    }
    clause_inc_ *= 1e-20;
  }
}

void Solver::decay_clause_activity() { clause_inc_ /= kClauseDecay; }

void Solver::analyze(CRef conflict, std::vector<Lit>& out_learned,
                     std::uint32_t& out_level, ResolutionChain& out_chain) {
  out_learned.clear();
  out_learned.push_back(kNoLit);  // slot for the 1UIP literal
  out_chain.chain.clear();
  out_chain.pivots.clear();

  std::uint32_t current = static_cast<std::uint32_t>(trail_lim_.size());
  int counter = 0;
  Lit p = kNoLit;
  std::size_t index = trail_.size();
  CRef cur = conflict;

  while (true) {
    Cls c = cls(cur);
    if (c.learned()) {
      bump_clause(c);
      update_lbd(c);
    }
    if (proof_) {
      if (p == kNoLit) {
        out_chain.chain.push_back(c.id());
      } else {
        out_chain.chain.push_back(c.id());
        out_chain.pivots.push_back(var(p));
      }
    }
    for (Lit q : c) {
      if (p != kNoLit && q == p) continue;  // the pivot itself
      Var v = var(q);
      if (seen_[v]) continue;
      assert(value(q) == LBool::kFalse);
      seen_[v] = 1;
      bump_var(v);
      if (var_data_[v].level >= current) {
        ++counter;
      } else {
        // Keep *all* lower-level literals, including level 0, so the logged
        // resolution chain derives exactly this clause; minimization strips
        // them with logged resolutions afterwards.
        out_learned.push_back(q);
      }
    }
    // Find the next current-level literal to resolve on.
    while (!seen_[var(trail_[index - 1])]) --index;
    --index;
    p = trail_[index];
    seen_[var(p)] = 0;
    --counter;
    if (counter == 0) break;
    cur = var_data_[var(p)].reason;
    assert(cur != kNoCRef && "non-decision literal must have a reason");
  }
  out_learned[0] = neg(p);
  stats_.learned_literals += out_learned.size();

  // Remember every var marked seen (minimization removes literals from
  // out_learned but their seen flags must still be cleared afterwards).
  std::vector<Var> seen_vars;
  seen_vars.reserve(out_learned.size());
  for (Lit l : out_learned) seen_vars.push_back(var(l));

  minimize_learned(out_learned, out_chain);

  // Compute backtrack level = max level among non-UIP literals.
  out_level = 0;
  std::size_t max_i = 1;
  for (std::size_t i = 1; i < out_learned.size(); ++i) {
    std::uint32_t lvl = var_data_[var(out_learned[i])].level;
    if (lvl > out_level) {
      out_level = lvl;
      max_i = i;
    }
  }
  // Put a literal of the backtrack level at position 1 (second watch).
  if (out_learned.size() > 1) std::swap(out_learned[1], out_learned[max_i]);

  // Clear seen flags (including vars removed by minimization).
  for (Var v : seen_vars) seen_[v] = 0;
}

void Solver::minimize_learned(std::vector<Lit>& learned, ResolutionChain& chain) {
  // A literal l (other than the UIP) is removable when it has a reason
  // clause all of whose other literals are either in the learned clause or
  // assigned at level 0.  Removal is a resolution step; every step is
  // appended to `chain` so the proof stays exact.  Introduced level-0
  // literals are resolved away transitively (their reasons only contain
  // level-0 literals, so the closure terminates).
  std::vector<Lit> kept;
  kept.push_back(learned[0]);
  std::vector<std::uint32_t> to_resolve;  // trail positions, processed descending

  for (std::size_t i = 1; i < learned.size(); ++i) {
    Lit l = learned[i];
    Var v = var(l);
    CRef r = var_data_[v].reason;
    bool removable = false;
    if (r != kNoCRef) {
      removable = true;
      for (Lit q : cls(r)) {
        if (var(q) == v) continue;
        if (!seen_[var(q)] && var_data_[var(q)].level != 0) {
          removable = false;
          break;
        }
      }
    }
    if (removable) {
      to_resolve.push_back(var_data_[v].trail_pos);
      ++stats_.minimized_literals;
    } else {
      kept.push_back(l);
    }
  }
  if (to_resolve.empty()) {
    learned.swap(kept);
    return;
  }
  // seen_ still marks all original learned-clause vars; mark kept-only set
  // separately for the closure test.
  std::vector<Var> kept_vars;
  for (Lit l : kept) kept_vars.push_back(var(l));

  if (proof_) {
    std::vector<std::uint8_t> queued(num_vars(), 0);
    // kept vars never enter the worklist; removed/introduced ones do.
    for (std::uint32_t pos : to_resolve) queued[var(trail_[pos])] = 1;
    std::make_heap(to_resolve.begin(), to_resolve.end());
    while (!to_resolve.empty()) {
      std::pop_heap(to_resolve.begin(), to_resolve.end());
      std::uint32_t pos = to_resolve.back();
      to_resolve.pop_back();
      Lit assigned = trail_[pos];
      Var v = var(assigned);
      CRef r = var_data_[v].reason;
      assert(r != kNoCRef);
      chain.chain.push_back(cls(r).id());
      chain.pivots.push_back(v);
      for (Lit q : cls(r)) {
        Var qv = var(q);
        if (qv == v || queued[qv]) continue;
        bool in_kept = false;
        for (Var kv : kept_vars)
          if (kv == qv) {
            in_kept = true;
            break;
          }
        if (in_kept) continue;
        // Introduced literal: must be level 0 (criterion) or a clause var
        // that was removed (already queued).  Resolve it away too.
        assert(var_data_[qv].level == 0 || seen_[qv]);
        queued[qv] = 1;
        to_resolve.push_back(var_data_[qv].trail_pos);
        std::push_heap(to_resolve.begin(), to_resolve.end());
      }
    }
  }
  learned.swap(kept);
}

void Solver::analyze_final(CRef conflict) {
  // Derive the empty clause from a clause falsified at decision level 0.
  if (!proof_ || proof_->complete()) return;
  ResolutionChain chain;
  chain.chain.push_back(cls(conflict).id());
  std::vector<std::uint32_t> work;
  std::vector<std::uint8_t> queued(num_vars(), 0);
  for (Lit q : cls(conflict)) {
    Var v = var(q);
    assert(var_data_[v].level == 0);
    if (!queued[v]) {
      queued[v] = 1;
      work.push_back(var_data_[v].trail_pos);
    }
  }
  std::make_heap(work.begin(), work.end());
  while (!work.empty()) {
    std::pop_heap(work.begin(), work.end());
    std::uint32_t pos = work.back();
    work.pop_back();
    Var v = var(trail_[pos]);
    CRef r = var_data_[v].reason;
    assert(r != kNoCRef && "level-0 assignments always have reasons");
    chain.chain.push_back(cls(r).id());
    chain.pivots.push_back(v);
    for (Lit q : cls(r)) {
      Var qv = var(q);
      if (qv == v || queued[qv]) continue;
      queued[qv] = 1;
      work.push_back(var_data_[qv].trail_pos);
      std::push_heap(work.begin(), work.end());
    }
  }
  proof_->set_final(std::move(chain));
}

void Solver::analyze_assumption(Lit failed) {
  // Collect an inconsistent subset of the assumptions by walking the
  // implication graph from the falsified assumption backwards.  All
  // decisions on the trail at this point are assumptions.
  failed_.clear();
  failed_.push_back(failed);
  seen_[var(failed)] = 1;
  for (std::size_t i = trail_.size(); i-- > 0;) {
    Var v = var(trail_[i]);
    if (!seen_[v]) continue;
    CRef r = var_data_[v].reason;
    if (r == kNoCRef) {
      if (trail_[i] != failed) failed_.push_back(trail_[i]);
    } else {
      for (Lit q : cls(r))
        if (var(q) != v) seen_[var(q)] = 1;
    }
    seen_[v] = 0;
  }
}

void Solver::backtrack(std::uint32_t level) {
  if (trail_lim_.size() <= level) return;
  std::uint32_t bound = trail_lim_[level];
  for (std::size_t i = trail_.size(); i > bound; --i) {
    Lit l = trail_[i - 1];
    Var v = var(l);
    phase_[v] = sign(l) ? 0 : 1;  // save polarity
    assign_[v] = LBool::kUndef;
    if (!heap_contains(v)) heap_insert(v);
  }
  trail_.resize(bound);
  trail_lim_.resize(level);
  qhead_ = bound;
}

Lit Solver::pick_branch() {
  while (!heap_.empty()) {
    Var v = heap_pop();
    if (assign_[v] == LBool::kUndef && !eliminated_[v])
      return mk_lit(v, phase_[v] == 0);  // saved phase (default negative)
  }
  return kNoLit;
}

void Solver::reduce_db() {
  ++stats_.db_reductions;
  if (obs::enabled()) {
    obs::counters().reduce_dbs.fetch_add(1, std::memory_order_relaxed);
    obs::emit("sat_reduce_db", {{"learned", learned_list_.size()},
                                {"arena_bytes", arena_bytes()}});
  }
  // Reduction candidates: live learned clauses outside the core tier.
  // Binary clauses are kept (their watchers are inline and dirt cheap) and
  // reason-locked clauses must survive.
  std::vector<CRef> cand;
  cand.reserve(learned_list_.size());
  for (CRef cr : learned_list_) {
    Cls c = cls(cr);
    if (c.deleted() || c.size() <= 2 || c.lbd() <= kCoreLbd) continue;
    if (locked(cr)) continue;
    cand.push_back(cr);
  }
  // Worst first: local tier (LBD > kTier2Lbd) strictly before tier2, then
  // higher LBD, then lower activity.  stable_sort on exact keys keeps the
  // removal set a pure function of the search history (determinism).
  std::stable_sort(cand.begin(), cand.end(), [&](CRef a, CRef b) {
    Cls ca = cls(a), cb = cls(b);
    bool local_a = ca.lbd() > kTier2Lbd, local_b = cb.lbd() > kTier2Lbd;
    if (local_a != local_b) return local_a;
    if (ca.lbd() != cb.lbd()) return ca.lbd() > cb.lbd();
    return ca.activity() < cb.activity();
  });
  std::size_t target = cand.size() / 2;
  for (std::size_t i = 0; i < target; ++i) delete_clause(cand[i]);
  learned_list_.erase(
      std::remove_if(learned_list_.begin(), learned_list_.end(),
                     [&](CRef cr) { return cls(cr).deleted(); }),
      learned_list_.end());
}

void Solver::maybe_simplify() {
  // Only at decision level 0 and only when the top-level trail grew.  The
  // sweep is O(arena), so it must be amortized; it fires when either
  //  - enough top-level facts accumulated that the expected garbage is
  //    worth gc_frac_ of the arena (each unit — e.g. an activation-literal
  //    retirement — satisfies clauses; 16 words is a coarse per-unit
  //    estimate), the trigger that keeps propagation-light incremental
  //    sessions (PDR retiring lemmas) lean, or
  //  - enough propagation work has passed to pay for a background sweep.
  if (!trail_lim_.empty() || trail_.size() <= simplify_trail_) return;
  const double growth = static_cast<double>(trail_.size() - simplify_trail_);
  const bool by_units = growth * 16.0 >= gc_frac_ * static_cast<double>(arena_.size());
  const bool by_props =
      (stats_.propagations - simplify_props_) * 4 >= arena_.size();
  if (!by_units && !by_props) return;
  remove_satisfied();
  simplify_trail_ = trail_.size();
  simplify_props_ = stats_.propagations;
}

void Solver::remove_satisfied() {
  // Physically drop clauses satisfied at decision level 0: they are
  // satisfied in every extension, so removal preserves equivalence (same
  // argument as the add_clause skip).  This is what reclaims clauses that
  // incremental engines retire via activation-literal units.  Reason-locked
  // clauses stay (proof finalization needs level-0 reasons).
  assert(trail_lim_.empty());
  for (CRef cr = 0; cr < static_cast<CRef>(arena_.size());) {
    Cls c = cls(cr);
    const std::uint32_t span = kHeaderWords + c.size();
    if (!c.deleted() && !locked(cr)) {
      for (Lit l : c) {
        if (value(l) == LBool::kTrue) {
          delete_clause(cr);
          ++stats_.removed_satisfied;
          break;
        }
      }
    }
    cr += span;
  }
  learned_list_.erase(
      std::remove_if(learned_list_.begin(), learned_list_.end(),
                     [&](CRef cr) { return cls(cr).deleted(); }),
      learned_list_.end());
  maybe_gc();
}

void Solver::maybe_gc() {
  if (wasted_ == 0) return;
  if (static_cast<double>(wasted_) <
      gc_frac_ * static_cast<double>(arena_.size()))
    return;
  garbage_collect();
}

void Solver::garbage_collect() {
  // Compact the arena: copy live clauses in order, leave a forwarding
  // pointer (reloc flag + new CRef in the id slot) in the old storage, then
  // rewrite every CRef holder.  ClauseIds move with the clause — the proof
  // log never notices a collection.
  std::vector<std::uint32_t> to;
  to.reserve(arena_.size() - wasted_);
  for (CRef cr = 0; cr < static_cast<CRef>(arena_.size());) {
    const std::uint32_t w0 = arena_[cr];
    const std::uint32_t span = kHeaderWords + (w0 >> kFlagBits);
    if (!(w0 & kDeletedFlag)) {
      const CRef ncr = static_cast<CRef>(to.size());
      to.insert(to.end(), arena_.begin() + cr, arena_.begin() + cr + span);
      arena_[cr] = w0 | kRelocFlag;
      arena_[cr + 1] = ncr;  // forwarding pointer (old id copy is dead)
    }
    cr += span;
  }
  auto reloc = [&](CRef& cr) {
    if (cr == kNoCRef) return;
    assert((arena_[cr] & kRelocFlag) != 0 && "dangling CRef into deleted clause");
    cr = arena_[cr + 1];
  };
  for (auto& wl : watches_)
    for (Watcher& w : wl) reloc(w.cref);
  for (auto& bl : bin_watches_)
    for (BinWatcher& w : bl) reloc(w.cr);
  // Only reasons of currently-assigned vars are live (stale reasons of
  // unassigned vars must not be chased — they may point anywhere).
  for (Lit l : trail_) reloc(var_data_[var(l)].reason);
  for (CRef& cr : learned_list_) reloc(cr);
  reloc(root_conflict_);
  stats_.wasted_bytes_reclaimed +=
      (arena_.size() - to.size()) * sizeof(std::uint32_t);
  ++stats_.gc_runs;
  if (obs::enabled()) {
    obs::counters().gc_runs.fetch_add(1, std::memory_order_relaxed);
    obs::emit("sat_gc",
              {{"reclaimed_bytes",
                (arena_.size() - to.size()) * sizeof(std::uint32_t)},
               {"arena_bytes", to.size() * sizeof(std::uint32_t)}});
  }
  arena_.swap(to);
#ifdef ITPSEQ_CHECKED
  ++arena_epoch_;  // compaction moved every clause
#endif
  wasted_ = 0;
}

#ifdef ITPSEQ_CHECKED
std::uint32_t Solver::debug_stale_view_probe() {
  // Ternary clauses so both add_clause calls definitely hit the arena
  // (units only enqueue).
  std::vector<Lit> c1, c2;
  for (int i = 0; i < 3; ++i) c1.push_back(mk_lit(new_var(), false));
  for (int i = 0; i < 3; ++i) c2.push_back(mk_lit(new_var(), false));
  add_clause(c1);
  Cls stale = cls(0);  // view of c1 at the current epoch
  add_clause(c2);      // allocates: bumps the epoch
  // itpseq-lint: allow(L1) deliberate: this probe EXISTS to trip the checked-build epoch assert
  return stale.size();  // must abort under ITPSEQ_CHECKED
}
#endif

double Solver::luby(std::uint64_t i) const {
  // Luby sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
  std::uint64_t size = 1, seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) >> 1;
    --seq;
    i = i % size;
  }
  return static_cast<double>(1ull << seq);
}

Status Solver::solve(const Budget& budget) { return solve_assuming({}, budget); }

Status Solver::solve_assuming(const std::vector<Lit>& assumptions,
                              const Budget& budget) {
  if (proof_ && !assumptions.empty())
    throw std::logic_error("assumptions are incompatible with proof logging");
  assumptions_ = assumptions;
  failed_.clear();
  backtrack(0);  // a previous kUnknown may have left the search mid-tree
  // Freeze contract: assumption vars must never be eliminated.  Freeze them
  // now and restore any that an earlier inprocessing round already
  // eliminated — BVE would otherwise silently mis-solve this query.
  for (Lit a : assumptions_) {
    Var v = var(a);
    if (v >= num_vars())
      throw std::invalid_argument("solve_assuming: unknown var");
    frozen_[v] = 1;
    if (eliminated_[v]) restore_var(v);
    assert(!eliminated_[v] && "assumed variable left eliminated");
  }
  auto start = std::chrono::steady_clock::now();
  auto cancelled = [&] {
    return budget.cancel != nullptr &&
           budget.cancel->load(std::memory_order_relaxed);
  };
  auto out_of_time = [&] {
    if (cancelled()) return true;
    // Hard memory pressure ends the search exactly like an exhausted clock:
    // kUnknown with whatever stats accumulated, before the allocator kills
    // the process.  limited() is one relaxed load, so unlimited runs (the
    // default) pay nothing.
    util::MemoryBudget& mb = util::MemoryBudget::instance();
    if (mb.limited()) {
      mb.poll();
      if (mb.hard()) return true;
    }
    if (budget.seconds < 0) return false;
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
               .count() > budget.seconds;
  };
  if (!ok_) {
    if (proof_ && !proof_->complete() && root_conflict_ != kNoCRef) {
      // Flush pending units so reasons exist, then finalize.
      propagate();  // cannot make things worse at level 0
      analyze_final(root_conflict_);
    }
    return Status::kUnsat;
  }
  if (budget.seconds == 0.0 || cancelled()) {
    // An exhausted wall-clock budget (or a cancelled run): do not start the
    // search at all.
    return Status::kUnknown;
  }
  {
    // Same entry check for the memory budget, so a run already over the
    // limit (e.g. --mem-limit below the resident baseline) bails before
    // building any search state.
    util::MemoryBudget& mb = util::MemoryBudget::instance();
    if (mb.limited()) {
      mb.poll();
      if (mb.hard()) return Status::kUnknown;
    }
  }

  // Telemetry: this solve's contribution to the global sampler counters is
  // pushed as deltas — periodically at the sample points below and, via the
  // scope guard, on every exit path.  All of it is behind obs::enabled().
  struct ObsWindow {
    std::uint64_t conflicts, propagations, decisions;
  } obs_last{stats_.conflicts, stats_.propagations, stats_.decisions};
  auto obs_flush = [&] {
    if (!obs::enabled()) return;
    obs::Counters& c = obs::counters();
    c.conflicts.fetch_add(stats_.conflicts - obs_last.conflicts,
                          std::memory_order_relaxed);
    c.propagations.fetch_add(stats_.propagations - obs_last.propagations,
                             std::memory_order_relaxed);
    c.decisions.fetch_add(stats_.decisions - obs_last.decisions,
                          std::memory_order_relaxed);
    obs_last = {stats_.conflicts, stats_.propagations, stats_.decisions};
  };
  struct ObsFlushGuard {
    decltype(obs_flush)& flush;
    ~ObsFlushGuard() { flush(); }
  } obs_guard{obs_flush};

  std::int64_t conflict_limit = budget.conflicts;
  std::uint64_t conflicts_this_solve = 0;
  // Trail-size EMA for the kEma blocking heuristic: a trail far above the
  // recent average means the search is close to completing an assignment —
  // restarting would discard that progress (Glucose's blocking rule).
  double trail_ema = 0.0;
  std::uint64_t restart_count = 0;
  std::uint64_t conflicts_until_restart =
      static_cast<std::uint64_t>(luby(restart_count) * kRestartBase);
  std::uint64_t conflicts_this_restart = 0;
  // Glue EMAs for RestartMode::kEma, seeded from the first learned clause
  // of this solve (no zero-bias warmup).
  double glue_fast = 0.0, glue_slow = 0.0;
  bool glue_seeded = false;
  max_learned_ =
      reduce_base_forced_
          ? reduce_base_
          : std::max<double>(reduce_base_,
                             static_cast<double>(num_input_clauses_) / 3.0);

  std::vector<Lit> learned;
  ResolutionChain chain;

  // Incremental entry point (level 0): fold top-level facts accumulated
  // since the last sweep into the database — drop satisfied clauses and
  // maybe compact the arena.  Amortized against propagation work because
  // the sweep is O(arena).
  maybe_simplify();
  // Inprocessing round (subsumption/BVE/vivification/probing), amortized by
  // conflicts since the last round; may refute the formula outright.
  if (!maybe_inprocess()) return Status::kUnsat;

  while (true) {
    CRef conflict = propagate();
    if (conflict != kNoCRef) {
      ++stats_.conflicts;
      ++conflicts_this_restart;
      ++conflicts_this_solve;
      if (conflicts_this_solve == 1)
        trail_ema = static_cast<double>(trail_.size());
      else
        trail_ema +=
            kTrailAlpha * (static_cast<double>(trail_.size()) - trail_ema);
      if (trail_lim_.empty()) {
        analyze_final(conflict);
        ok_ = false;
        return Status::kUnsat;
      }
      std::uint32_t bt_level = 0;
      analyze(conflict, learned, bt_level, chain);
      backtrack(bt_level);

      ClauseId id = kNoClauseId;
      if (proof_) id = proof_->add_learned(learned, std::move(chain));
      chain = ResolutionChain{};

      // Glue computed at learning time (post-minimization, pre-backtrack
      // levels are still those of the conflict) drives the retention tier.
      std::uint32_t lbd = compute_lbd(learned);
      ++stats_.glue_hist[std::min<std::uint32_t>(lbd, 8) - 1];
      if (lbd <= kCoreLbd)
        ++stats_.learned_core;
      else if (lbd <= kTier2Lbd)
        ++stats_.learned_mid;
      else
        ++stats_.learned_local;
      if (!glue_seeded) {
        glue_fast = glue_slow = static_cast<double>(lbd);
        glue_seeded = true;
      } else {
        glue_fast += kEmaFastAlpha * (static_cast<double>(lbd) - glue_fast);
        glue_slow += kEmaSlowAlpha * (static_cast<double>(lbd) - glue_slow);
      }

      CRef cr = alloc_clause(learned, id, /*learned=*/true, lbd);
      if (learned.size() > 1) {
        cls(cr).set_activity(static_cast<float>(clause_inc_));
        learned_list_.push_back(cr);
        attach(cr);
      }
      // Unit learned clauses are stored unattached so they can serve as the
      // reason of their (permanent, level-0) assignment.
      enqueue(learned[0], cr);
      decay_var_activity();
      decay_clause_activity();

      if (conflict_limit >= 0 &&
          stats_.conflicts >= static_cast<std::uint64_t>(conflict_limit)) {
        backtrack(0);
        return Status::kUnknown;
      }
      // The cancellation token is polled on every conflict (one relaxed
      // atomic load); the wall clock only every 64 conflicts — a syscall on
      // the conflict path is measurable, and 64 conflicts of extra latency
      // are well inside the budget granularity engines care about.
      if (cancelled() || ((stats_.conflicts & 63) == 0 && out_of_time())) {
        backtrack(0);
        return Status::kUnknown;
      }
      // Conflict-rate sample: one event every 4096 conflicts makes long
      // queries visible mid-flight without touching the per-conflict path
      // beyond this masked check.
      if ((stats_.conflicts & 4095) == 0 && obs::enabled()) {
        obs::emit("sat_sample", {{"conflicts", stats_.conflicts},
                                 {"propagations", stats_.propagations},
                                 {"decisions", stats_.decisions},
                                 {"learned", learned_list_.size()},
                                 {"arena_bytes", arena_bytes()}});
        obs_flush();
      }
    } else {
      bool restart_now =
          restart_mode_ == RestartMode::kLuby
              ? conflicts_this_restart >= conflicts_until_restart
              : conflicts_this_restart >= kEmaMinConflicts && glue_seeded &&
                    glue_fast > kEmaThreshold * glue_slow;
      if (restart_now && restart_mode_ == RestartMode::kEma &&
          conflicts_this_solve >= kTrailBlockWarmup &&
          static_cast<double>(trail_.size()) > kTrailBlockFactor * trail_ema) {
        // Blocking: the current trail dwarfs the recent average, i.e. the
        // search may be about to finish an assignment.  Veto this restart
        // and re-arm the glue trigger so the next window decides afresh.
        ++stats_.restarts_blocked;
        conflicts_this_restart = 0;
        glue_fast = glue_slow;
        restart_now = false;
      }
      if (restart_now) {
        ++stats_.restarts;
        if (obs::enabled()) {
          obs::counters().restarts.fetch_add(1, std::memory_order_relaxed);
          obs::emit("sat_restart", {{"conflicts", stats_.conflicts},
                                    {"glue_fast", glue_fast},
                                    {"glue_slow", glue_slow}});
        }
        ++restart_count;
        conflicts_this_restart = 0;
        conflicts_until_restart =
            static_cast<std::uint64_t>(luby(restart_count) * kRestartBase);
        // Forget the short-term spike that triggered the restart so the
        // next window measures the post-restart trajectory.
        glue_fast = glue_slow;
        backtrack(0);
        maybe_simplify();
        if (!maybe_inprocess()) return Status::kUnsat;
        continue;
      }
      // Rung 1 of the memory-degradation ladder (see util/mem_budget.hpp):
      // under soft pressure, shed ballast once — stop inprocessing (its
      // occurrence index is the largest transient allocation), clamp the
      // learnt cap, and reduce+compact immediately.  Both calls are safe at
      // non-zero decision level (locked clauses are skipped).
      if (!mem_degraded_ && util::MemoryBudget::instance().soft()) {
        mem_degraded_ = true;
        inprocess_on_ = false;
        max_learned_ = std::min(max_learned_, 2000.0);
        reduce_db();
        garbage_collect();
      }
      if (static_cast<double>(learned_list_.size()) >= max_learned_) {
        reduce_db();
        maybe_gc();
        max_learned_ *= 1.3;
      }
      // Assumptions are decided first, in order, one per decision level.
      Lit next = kNoLit;
      while (trail_lim_.size() < assumptions_.size()) {
        Lit a = assumptions_[trail_lim_.size()];
        if (value(a) == LBool::kTrue) {
          // Already implied: open a dummy level to keep positions aligned.
          trail_lim_.push_back(static_cast<std::uint32_t>(trail_.size()));
          continue;
        }
        if (value(a) == LBool::kFalse) {
          analyze_assumption(a);
          backtrack(0);
          return Status::kUnsat;  // unsat under assumptions; ok() stays true
        }
        next = a;
        break;
      }
      if (next == kNoLit) next = pick_branch();
      if (next == kNoLit) {
        model_.assign(assign_.begin(), assign_.end());
        // BVE left eliminated vars unassigned; reconstruct their values so
        // callers read a total model of the *original* formula.
        extend_model_over_eliminated(model_);
        backtrack(0);
        return Status::kSat;
      }
      if ((stats_.decisions & 1023) == 0 && out_of_time()) {
        backtrack(0);
        return Status::kUnknown;
      }
      ++stats_.decisions;
      trail_lim_.push_back(static_cast<std::uint32_t>(trail_.size()));
      enqueue(next, kNoCRef);
    }
  }
}

bool Solver::verify_model() const {
  for (CRef cr = 0; cr < static_cast<CRef>(arena_.size());) {
    const Cls c = cls(cr);
    cr += kHeaderWords + c.size();
    if (c.learned() || c.deleted()) continue;
    bool sat = false;
    for (std::uint32_t i = 0; i < c.size(); ++i)
      if (lbool_xor(model_[var(c[i])], sign(c[i])) == LBool::kTrue) {
        sat = true;
        break;
      }
    if (!sat && c.size() != 0) return false;
  }
  return true;
}

// --- activity heap ---------------------------------------------------------

void Solver::heap_insert(Var v) {
  heap_pos_[v] = heap_.size();
  heap_.push_back(v);
  heap_up(heap_pos_[v]);
}

Var Solver::heap_pop() {
  Var top = heap_[0];
  heap_pos_[top] = kNoPos;
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_pos_[heap_[0]] = 0;
    heap_down(0);
  }
  return top;
}

void Solver::heap_up(std::size_t i) {
  Var v = heap_[i];
  while (i > 0) {
    std::size_t parent = (i - 1) / 2;
    if (activity_[heap_[parent]] >= activity_[v]) break;
    heap_[i] = heap_[parent];
    heap_pos_[heap_[i]] = i;
    i = parent;
  }
  heap_[i] = v;
  heap_pos_[v] = i;
}

void Solver::heap_down(std::size_t i) {
  Var v = heap_[i];
  while (true) {
    std::size_t left = 2 * i + 1;
    if (left >= heap_.size()) break;
    std::size_t right = left + 1;
    std::size_t best = (right < heap_.size() &&
                        activity_[heap_[right]] > activity_[heap_[left]])
                           ? right
                           : left;
    if (activity_[heap_[best]] <= activity_[v]) break;
    heap_[i] = heap_[best];
    heap_pos_[heap_[i]] = i;
    i = best;
  }
  heap_[i] = v;
  heap_pos_[v] = i;
}

}  // namespace itpseq::sat
