#include "sat/solver.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <stdexcept>

namespace itpseq::sat {

namespace {
constexpr double kVarDecay = 0.95;
constexpr double kClauseDecay = 0.999;
constexpr double kRescaleLimit = 1e100;
constexpr std::uint32_t kRestartBase = 100;  // conflicts per Luby unit
}  // namespace

Solver::Solver() = default;
Solver::~Solver() = default;

void Solver::enable_proof() {
  if (!clauses_.empty())
    throw std::logic_error("enable_proof must precede add_clause");
  if (!proof_) proof_ = std::make_unique<Proof>();
}

Var Solver::new_var() {
  Var v = static_cast<Var>(assign_.size());
  assign_.push_back(LBool::kUndef);
  var_data_.push_back(VarData{});
  activity_.push_back(0.0);
  phase_.push_back(0);
  heap_pos_.push_back(kNoPos);
  seen_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  heap_insert(v);
  return v;
}

bool Solver::add_clause(std::vector<Lit> lits, std::uint32_t label) {
  assert(trail_lim_.empty() && "add_clause only at decision level 0");
  // Deduplicate and detect tautologies.
  std::sort(lits.begin(), lits.end());
  lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
  for (std::size_t i = 0; i + 1 < lits.size(); ++i)
    if (lits[i + 1] == neg(lits[i])) return true;  // tautology: skip
  for (Lit l : lits)
    if (var(l) >= num_vars()) throw std::invalid_argument("add_clause: unknown var");
  // Skip clauses already satisfied at level 0 (sound for refutation: the
  // satisfying literal is implied by the remaining formula).
  for (Lit l : lits)
    if (value(l) == LBool::kTrue) return true;

  ++num_input_clauses_;
  ClauseId id = kNoClauseId;
  if (proof_) id = proof_->add_original(lits, label);

  if (lits.empty()) {
    ok_ = false;
    if (proof_ && !proof_->complete()) {
      ResolutionChain chain;
      chain.chain.push_back(id);
      proof_->set_final(std::move(chain));
    }
    return false;
  }

  // Order literals so that non-false ones come first (watch positions).
  std::stable_partition(lits.begin(), lits.end(),
                        [&](Lit l) { return value(l) != LBool::kFalse; });
  std::size_t num_free = 0;
  while (num_free < lits.size() && value(lits[num_free]) != LBool::kFalse) ++num_free;

  CRef cr = static_cast<CRef>(clauses_.size());
  Clause c;
  c.lits = std::move(lits);
  c.id = id;
  c.learned = false;
  clauses_.push_back(std::move(c));

  if (num_free == 0) {
    // All literals false at level 0: root conflict.
    if (ok_) {
      ok_ = false;
      root_conflict_ = cr;
    }
    return false;
  }
  if (num_free == 1) {
    enqueue(clauses_[cr].lits[0], cr);
    return ok_;
  }
  attach(cr);
  return true;
}

void Solver::attach(CRef cr) {
  const Clause& c = clauses_[cr];
  assert(c.lits.size() >= 2);
  watches_[c.lits[0]].push_back(Watcher{cr, c.lits[1]});
  watches_[c.lits[1]].push_back(Watcher{cr, c.lits[0]});
}

void Solver::detach(CRef cr) {
  const Clause& c = clauses_[cr];
  for (int i = 0; i < 2; ++i) {
    auto& wl = watches_[c.lits[i]];
    for (std::size_t j = 0; j < wl.size(); ++j)
      if (wl[j].cref == cr) {
        wl[j] = wl.back();
        wl.pop_back();
        break;
      }
  }
}

void Solver::enqueue(Lit l, CRef reason) {
  assert(value(l) == LBool::kUndef);
  Var v = var(l);
  assign_[v] = sign(l) ? LBool::kFalse : LBool::kTrue;
  var_data_[v].reason = reason;
  var_data_[v].level = static_cast<std::uint32_t>(trail_lim_.size());
  var_data_[v].trail_pos = static_cast<std::uint32_t>(trail_.size());
  trail_.push_back(l);
}

Solver::CRef Solver::propagate() {
  while (qhead_ < trail_.size()) {
    Lit p = trail_[qhead_++];
    Lit false_lit = neg(p);  // literal that just became false
    auto& wl = watches_[false_lit];
    std::size_t i = 0, j = 0;
    while (i < wl.size()) {
      Watcher w = wl[i];
      if (value(w.blocker) == LBool::kTrue) {
        wl[j++] = wl[i++];
        continue;
      }
      Clause& c = clauses_[w.cref];
      auto& ls = c.lits;
      // Make sure the false literal is at position 1.
      if (ls[0] == false_lit) std::swap(ls[0], ls[1]);
      assert(ls[1] == false_lit);
      ++i;
      // 0th watch true: clause satisfied.
      if (value(ls[0]) == LBool::kTrue) {
        wl[j++] = Watcher{w.cref, ls[0]};
        continue;
      }
      // Look for a replacement watch.
      bool found = false;
      for (std::size_t k = 2; k < ls.size(); ++k) {
        if (value(ls[k]) != LBool::kFalse) {
          std::swap(ls[1], ls[k]);
          watches_[ls[1]].push_back(Watcher{w.cref, ls[0]});
          found = true;
          break;
        }
      }
      if (found) continue;  // watcher moved away
      // Clause is unit or conflicting.
      wl[j++] = Watcher{w.cref, ls[0]};
      if (value(ls[0]) == LBool::kFalse) {
        // Conflict: copy remaining watchers and bail out.
        while (i < wl.size()) wl[j++] = wl[i++];
        wl.resize(j);
        qhead_ = trail_.size();
        return w.cref;
      }
      enqueue(ls[0], w.cref);
      ++stats_.propagations;
    }
    wl.resize(j);
  }
  return kNoCRef;
}

void Solver::bump_var(Var v) {
  activity_[v] += var_inc_;
  if (activity_[v] > kRescaleLimit) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  if (heap_contains(v)) heap_up(heap_pos_[v]);
}

void Solver::decay_var_activity() { var_inc_ /= kVarDecay; }

void Solver::bump_clause(Clause& c) {
  c.activity += clause_inc_;
  if (c.activity > kRescaleLimit) {
    for (CRef cr : learned_list_) clauses_[cr].activity *= 1e-100;
    clause_inc_ *= 1e-100;
  }
}

void Solver::decay_clause_activity() { clause_inc_ /= kClauseDecay; }

void Solver::analyze(CRef conflict, std::vector<Lit>& out_learned,
                     std::uint32_t& out_level, ResolutionChain& out_chain) {
  out_learned.clear();
  out_learned.push_back(kNoLit);  // slot for the 1UIP literal
  out_chain.chain.clear();
  out_chain.pivots.clear();

  std::uint32_t current = static_cast<std::uint32_t>(trail_lim_.size());
  int counter = 0;
  Lit p = kNoLit;
  std::size_t index = trail_.size();
  CRef cur = conflict;

  while (true) {
    Clause& c = clauses_[cur];
    if (c.learned) bump_clause(c);
    if (proof_) {
      if (p == kNoLit) {
        out_chain.chain.push_back(c.id);
      } else {
        out_chain.chain.push_back(c.id);
        out_chain.pivots.push_back(var(p));
      }
    }
    for (Lit q : c.lits) {
      if (p != kNoLit && q == p) continue;  // the pivot itself
      Var v = var(q);
      if (seen_[v]) continue;
      assert(value(q) == LBool::kFalse);
      seen_[v] = 1;
      bump_var(v);
      if (var_data_[v].level >= current) {
        ++counter;
      } else {
        // Keep *all* lower-level literals, including level 0, so the logged
        // resolution chain derives exactly this clause; minimization strips
        // them with logged resolutions afterwards.
        out_learned.push_back(q);
      }
    }
    // Find the next current-level literal to resolve on.
    while (!seen_[var(trail_[index - 1])]) --index;
    --index;
    p = trail_[index];
    seen_[var(p)] = 0;
    --counter;
    if (counter == 0) break;
    cur = var_data_[var(p)].reason;
    assert(cur != kNoCRef && "non-decision literal must have a reason");
  }
  out_learned[0] = neg(p);
  stats_.learned_literals += out_learned.size();

  // Remember every var marked seen (minimization removes literals from
  // out_learned but their seen flags must still be cleared afterwards).
  std::vector<Var> seen_vars;
  seen_vars.reserve(out_learned.size());
  for (Lit l : out_learned) seen_vars.push_back(var(l));

  minimize_learned(out_learned, out_chain);

  // Compute backtrack level = max level among non-UIP literals.
  out_level = 0;
  std::size_t max_i = 1;
  for (std::size_t i = 1; i < out_learned.size(); ++i) {
    std::uint32_t lvl = var_data_[var(out_learned[i])].level;
    if (lvl > out_level) {
      out_level = lvl;
      max_i = i;
    }
  }
  // Put a literal of the backtrack level at position 1 (second watch).
  if (out_learned.size() > 1) std::swap(out_learned[1], out_learned[max_i]);

  // Clear seen flags (including vars removed by minimization).
  for (Var v : seen_vars) seen_[v] = 0;
}

void Solver::minimize_learned(std::vector<Lit>& learned, ResolutionChain& chain) {
  // A literal l (other than the UIP) is removable when it has a reason
  // clause all of whose other literals are either in the learned clause or
  // assigned at level 0.  Removal is a resolution step; every step is
  // appended to `chain` so the proof stays exact.  Introduced level-0
  // literals are resolved away transitively (their reasons only contain
  // level-0 literals, so the closure terminates).
  std::vector<Lit> kept;
  kept.push_back(learned[0]);
  std::vector<std::uint32_t> to_resolve;  // trail positions, processed descending

  for (std::size_t i = 1; i < learned.size(); ++i) {
    Lit l = learned[i];
    Var v = var(l);
    CRef r = var_data_[v].reason;
    bool removable = false;
    if (r != kNoCRef) {
      removable = true;
      for (Lit q : clauses_[r].lits) {
        if (var(q) == v) continue;
        if (!seen_[var(q)] && var_data_[var(q)].level != 0) {
          removable = false;
          break;
        }
      }
    }
    if (removable) {
      to_resolve.push_back(var_data_[v].trail_pos);
      ++stats_.minimized_literals;
    } else {
      kept.push_back(l);
    }
  }
  if (to_resolve.empty()) {
    learned.swap(kept);
    return;
  }
  // seen_ still marks all original learned-clause vars; mark kept-only set
  // separately for the closure test.
  std::vector<Var> kept_vars;
  for (Lit l : kept) kept_vars.push_back(var(l));

  if (proof_) {
    std::vector<std::uint8_t> queued(num_vars(), 0);
    // kept vars never enter the worklist; removed/introduced ones do.
    for (std::uint32_t pos : to_resolve) queued[var(trail_[pos])] = 1;
    std::make_heap(to_resolve.begin(), to_resolve.end());
    while (!to_resolve.empty()) {
      std::pop_heap(to_resolve.begin(), to_resolve.end());
      std::uint32_t pos = to_resolve.back();
      to_resolve.pop_back();
      Lit assigned = trail_[pos];
      Var v = var(assigned);
      CRef r = var_data_[v].reason;
      assert(r != kNoCRef);
      chain.chain.push_back(clauses_[r].id);
      chain.pivots.push_back(v);
      for (Lit q : clauses_[r].lits) {
        Var qv = var(q);
        if (qv == v || queued[qv]) continue;
        bool in_kept = false;
        for (Var kv : kept_vars)
          if (kv == qv) {
            in_kept = true;
            break;
          }
        if (in_kept) continue;
        // Introduced literal: must be level 0 (criterion) or a clause var
        // that was removed (already queued).  Resolve it away too.
        assert(var_data_[qv].level == 0 || seen_[qv]);
        queued[qv] = 1;
        to_resolve.push_back(var_data_[qv].trail_pos);
        std::push_heap(to_resolve.begin(), to_resolve.end());
      }
    }
  }
  learned.swap(kept);
}

void Solver::analyze_final(CRef conflict) {
  // Derive the empty clause from a clause falsified at decision level 0.
  if (!proof_ || proof_->complete()) return;
  ResolutionChain chain;
  chain.chain.push_back(clauses_[conflict].id);
  std::vector<std::uint32_t> work;
  std::vector<std::uint8_t> queued(num_vars(), 0);
  for (Lit q : clauses_[conflict].lits) {
    Var v = var(q);
    assert(var_data_[v].level == 0);
    if (!queued[v]) {
      queued[v] = 1;
      work.push_back(var_data_[v].trail_pos);
    }
  }
  std::make_heap(work.begin(), work.end());
  while (!work.empty()) {
    std::pop_heap(work.begin(), work.end());
    std::uint32_t pos = work.back();
    work.pop_back();
    Var v = var(trail_[pos]);
    CRef r = var_data_[v].reason;
    assert(r != kNoCRef && "level-0 assignments always have reasons");
    chain.chain.push_back(clauses_[r].id);
    chain.pivots.push_back(v);
    for (Lit q : clauses_[r].lits) {
      Var qv = var(q);
      if (qv == v || queued[qv]) continue;
      queued[qv] = 1;
      work.push_back(var_data_[qv].trail_pos);
      std::push_heap(work.begin(), work.end());
    }
  }
  proof_->set_final(std::move(chain));
}

void Solver::analyze_assumption(Lit failed) {
  // Collect an inconsistent subset of the assumptions by walking the
  // implication graph from the falsified assumption backwards.  All
  // decisions on the trail at this point are assumptions.
  failed_.clear();
  failed_.push_back(failed);
  seen_[var(failed)] = 1;
  for (std::size_t i = trail_.size(); i-- > 0;) {
    Var v = var(trail_[i]);
    if (!seen_[v]) continue;
    CRef r = var_data_[v].reason;
    if (r == kNoCRef) {
      if (trail_[i] != failed) failed_.push_back(trail_[i]);
    } else {
      for (Lit q : clauses_[r].lits)
        if (var(q) != v) seen_[var(q)] = 1;
    }
    seen_[v] = 0;
  }
}

void Solver::backtrack(std::uint32_t level) {
  if (trail_lim_.size() <= level) return;
  std::uint32_t bound = trail_lim_[level];
  for (std::size_t i = trail_.size(); i > bound; --i) {
    Lit l = trail_[i - 1];
    Var v = var(l);
    phase_[v] = sign(l) ? 0 : 1;  // save polarity
    assign_[v] = LBool::kUndef;
    if (!heap_contains(v)) heap_insert(v);
  }
  trail_.resize(bound);
  trail_lim_.resize(level);
  qhead_ = bound;
}

Lit Solver::pick_branch() {
  while (!heap_.empty()) {
    Var v = heap_pop();
    if (assign_[v] == LBool::kUndef)
      return mk_lit(v, phase_[v] == 0);  // saved phase (default negative)
  }
  return kNoLit;
}

void Solver::reduce_db() {
  ++stats_.db_reductions;
  std::vector<CRef> live;
  live.reserve(learned_list_.size());
  for (CRef cr : learned_list_)
    if (!clauses_[cr].deleted) live.push_back(cr);
  std::sort(live.begin(), live.end(), [&](CRef a, CRef b) {
    return clauses_[a].activity < clauses_[b].activity;
  });
  std::size_t target = live.size() / 2;
  std::size_t removed = 0;
  for (CRef cr : live) {
    if (removed >= target) break;
    Clause& c = clauses_[cr];
    if (c.lits.size() <= 2) continue;
    // Never delete a clause that is currently a reason ("locked").
    Lit l0 = c.lits[0];
    if (value(l0) == LBool::kTrue && var_data_[var(l0)].reason != kNoCRef &&
        &clauses_[var_data_[var(l0)].reason] == &c)
      continue;
    detach(cr);
    c.deleted = true;
    c.lits.clear();
    c.lits.shrink_to_fit();
    ++removed;
  }
  learned_list_.erase(std::remove_if(learned_list_.begin(), learned_list_.end(),
                                     [&](CRef cr) { return clauses_[cr].deleted; }),
                      learned_list_.end());
}

double Solver::luby(std::uint64_t i) const {
  // Luby sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
  std::uint64_t size = 1, seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) >> 1;
    --seq;
    i = i % size;
  }
  return static_cast<double>(1ull << seq);
}

Status Solver::solve(const Budget& budget) { return solve_assuming({}, budget); }

Status Solver::solve_assuming(const std::vector<Lit>& assumptions,
                              const Budget& budget) {
  if (proof_ && !assumptions.empty())
    throw std::logic_error("assumptions are incompatible with proof logging");
  assumptions_ = assumptions;
  failed_.clear();
  backtrack(0);  // a previous kUnknown may have left the search mid-tree
  auto start = std::chrono::steady_clock::now();
  auto cancelled = [&] {
    return budget.cancel != nullptr &&
           budget.cancel->load(std::memory_order_relaxed);
  };
  auto out_of_time = [&] {
    if (cancelled()) return true;
    if (budget.seconds < 0) return false;
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
               .count() > budget.seconds;
  };
  if (!ok_) {
    if (proof_ && !proof_->complete() && root_conflict_ != kNoCRef) {
      // Flush pending units so reasons exist, then finalize.
      propagate();  // cannot make things worse at level 0
      analyze_final(root_conflict_);
    }
    return Status::kUnsat;
  }
  if (budget.seconds == 0.0 || cancelled()) {
    // An exhausted wall-clock budget (or a cancelled run): do not start the
    // search at all.
    return Status::kUnknown;
  }

  std::int64_t conflict_limit = budget.conflicts;
  std::uint64_t restart_count = 0;
  std::uint64_t conflicts_until_restart =
      static_cast<std::uint64_t>(luby(restart_count) * kRestartBase);
  std::uint64_t conflicts_this_restart = 0;
  max_learned_ = std::max<double>(1000.0, static_cast<double>(num_input_clauses_) / 3.0);

  std::vector<Lit> learned;
  ResolutionChain chain;

  while (true) {
    CRef conflict = propagate();
    if (conflict != kNoCRef) {
      ++stats_.conflicts;
      ++conflicts_this_restart;
      if (trail_lim_.empty()) {
        analyze_final(conflict);
        ok_ = false;
        return Status::kUnsat;
      }
      std::uint32_t bt_level = 0;
      analyze(conflict, learned, bt_level, chain);
      backtrack(bt_level);

      ClauseId id = kNoClauseId;
      if (proof_) id = proof_->add_learned(learned, std::move(chain));
      chain = ResolutionChain{};

      if (learned.size() == 1) {
        // Unit learned clause: store it so it can serve as a reason.
        CRef cr = static_cast<CRef>(clauses_.size());
        Clause c;
        c.lits = learned;
        c.id = id;
        c.learned = true;
        clauses_.push_back(std::move(c));
        enqueue(learned[0], cr);
      } else {
        CRef cr = static_cast<CRef>(clauses_.size());
        Clause c;
        c.lits = learned;
        c.id = id;
        c.learned = true;
        c.activity = clause_inc_;
        clauses_.push_back(std::move(c));
        learned_list_.push_back(cr);
        attach(cr);
        enqueue(learned[0], cr);
      }
      decay_var_activity();
      decay_clause_activity();

      if (conflict_limit >= 0 &&
          stats_.conflicts >= static_cast<std::uint64_t>(conflict_limit)) {
        backtrack(0);
        return Status::kUnknown;
      }
      if (cancelled() || ((stats_.conflicts & 255) == 0 && out_of_time())) {
        backtrack(0);
        return Status::kUnknown;
      }
    } else {
      if (conflicts_this_restart >= conflicts_until_restart) {
        ++stats_.restarts;
        ++restart_count;
        conflicts_this_restart = 0;
        conflicts_until_restart =
            static_cast<std::uint64_t>(luby(restart_count) * kRestartBase);
        backtrack(0);
        continue;
      }
      if (static_cast<double>(learned_list_.size()) >= max_learned_) {
        reduce_db();
        max_learned_ *= 1.3;
      }
      // Assumptions are decided first, in order, one per decision level.
      Lit next = kNoLit;
      while (trail_lim_.size() < assumptions_.size()) {
        Lit a = assumptions_[trail_lim_.size()];
        if (value(a) == LBool::kTrue) {
          // Already implied: open a dummy level to keep positions aligned.
          trail_lim_.push_back(static_cast<std::uint32_t>(trail_.size()));
          continue;
        }
        if (value(a) == LBool::kFalse) {
          analyze_assumption(a);
          backtrack(0);
          return Status::kUnsat;  // unsat under assumptions; ok() stays true
        }
        next = a;
        break;
      }
      if (next == kNoLit) next = pick_branch();
      if (next == kNoLit) {
        model_.assign(assign_.begin(), assign_.end());
        backtrack(0);
        return Status::kSat;
      }
      if ((stats_.decisions & 1023) == 0 && out_of_time()) {
        backtrack(0);
        return Status::kUnknown;
      }
      ++stats_.decisions;
      trail_lim_.push_back(static_cast<std::uint32_t>(trail_.size()));
      enqueue(next, kNoCRef);
    }
  }
}

bool Solver::verify_model() const {
  for (const Clause& c : clauses_) {
    if (c.learned || c.deleted) continue;
    bool sat = false;
    for (Lit l : c.lits)
      if (lbool_xor(model_[var(l)], sign(l)) == LBool::kTrue) {
        sat = true;
        break;
      }
    if (!sat && !c.lits.empty()) return false;
  }
  return true;
}

// --- activity heap ---------------------------------------------------------

void Solver::heap_insert(Var v) {
  heap_pos_[v] = heap_.size();
  heap_.push_back(v);
  heap_up(heap_pos_[v]);
}

Var Solver::heap_pop() {
  Var top = heap_[0];
  heap_pos_[top] = kNoPos;
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_pos_[heap_[0]] = 0;
    heap_down(0);
  }
  return top;
}

void Solver::heap_up(std::size_t i) {
  Var v = heap_[i];
  while (i > 0) {
    std::size_t parent = (i - 1) / 2;
    if (activity_[heap_[parent]] >= activity_[v]) break;
    heap_[i] = heap_[parent];
    heap_pos_[heap_[i]] = i;
    i = parent;
  }
  heap_[i] = v;
  heap_pos_[v] = i;
}

void Solver::heap_down(std::size_t i) {
  Var v = heap_[i];
  while (true) {
    std::size_t left = 2 * i + 1;
    if (left >= heap_.size()) break;
    std::size_t right = left + 1;
    std::size_t best = (right < heap_.size() &&
                        activity_[heap_[right]] > activity_[heap_[left]])
                           ? right
                           : left;
    if (activity_[heap_[best]] <= activity_[v]) break;
    heap_[i] = heap_[best];
    heap_pos_[heap_[i]] = i;
    i = best;
  }
  heap_[i] = v;
  heap_pos_[v] = i;
}

}  // namespace itpseq::sat
