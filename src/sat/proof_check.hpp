// proof_check.hpp — independent replay of resolution proofs.
//
// Used by the test suite and available as a debugging aid: re-derives every
// learned clause in the proof core by literally performing the logged
// resolution chain, and checks the result matches the recorded literals
// (and that the final chain yields the empty clause).
#pragma once

#include <string>

#include "sat/proof.hpp"

namespace itpseq::sat {

/// Result of replaying a proof.
struct ProofCheckResult {
  bool ok = false;
  std::string error;  // human-readable description of the first failure
};

/// Replay all chains in the core of `proof`.  Each chain must be a valid
/// trivial resolution derivation and produce exactly the recorded clause
/// (as a set of literals); the final chain must produce the empty clause.
ProofCheckResult check_proof(const Proof& proof);

}  // namespace itpseq::sat
