// drat.hpp — DRAT proof export and an independent forward RUP checker.
//
// DRAT is the de-facto standard clausal proof format of the SAT
// competitions: a refutation is a list of clause *additions* (each of
// which must be a reverse-unit-propagation — RUP — consequence of the
// formula so far) optionally interleaved with deletions ("d" lines),
// ending with the empty clause.
//
// Because this solver logs full resolution chains, every learned clause in
// the proof is RUP by construction, so export is a projection of the
// resolution proof: emit the core's learned clauses in derivation order.
// The bundled checker re-verifies a DRAT file against the original CNF by
// literal forward RUP checking (assert the negation of each added clause,
// run unit propagation, expect a conflict) — sharing no code with the
// solver's propagation engine, which is the point of an independent
// checker.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sat/proof.hpp"
#include "sat/types.hpp"

namespace itpseq::sat {

/// Write the core learned clauses of `proof` (which must be complete) as a
/// DRAT proof, in DIMACS-style signed-integer lines terminated by 0.  The
/// final line is the empty clause ("0").
void write_drat(const Proof& proof, std::ostream& out);

struct DratCheckResult {
  bool ok = false;
  std::string error;        // first failure, human-readable
  std::size_t additions = 0;  // clause additions verified
  std::size_t deletions = 0;  // deletion lines applied
};

/// Forward RUP check of a DRAT proof against a CNF.
/// `clauses` is the original formula over variables 0..num_vars-1.
/// The proof stream contains one clause per line in DIMACS convention
/// (positive integer v = variable v-1 positive, negative = complemented),
/// with optional "d" deletion lines.  Verification succeeds iff every
/// addition is RUP and the empty clause is derived.
DratCheckResult check_drat(unsigned num_vars,
                           const std::vector<std::vector<Lit>>& clauses,
                           std::istream& proof);

}  // namespace itpseq::sat
