// Checked-build support (ITPSEQ_CHECKED).
//
// The static linter (scripts/lint/) proves what it can from token shapes;
// this header is the *dynamic* backstop for the contracts it can only
// approximate: arena-view lifetimes and the inprocessing freeze contract.
// Everything here follows the obs "off means free" rule — when the CMake
// option ITPSEQ_CHECKED is OFF (the default) the macro expands to nothing,
// no fields exist, and the release code path is bit-identical.
//
// ITPSEQ_CHECK deliberately does not use assert(): checked builds must fire
// in any CMAKE_BUILD_TYPE (CI runs RelWithDebInfo, which defines NDEBUG).
// A violation prints one line and aborts; tests/checked_test.cpp matches
// the "itpseq checked-build violation" prefix in a death test.
#pragma once

#ifdef ITPSEQ_CHECKED

#include <cstdio>
#include <cstdlib>

#define ITPSEQ_CHECK(cond, msg)                                       \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::fprintf(stderr,                                            \
                   "itpseq checked-build violation: %s (%s:%d)\n",    \
                   msg, __FILE__, __LINE__);                          \
      std::abort();                                                   \
    }                                                                 \
  } while (0)

#else

#define ITPSEQ_CHECK(cond, msg) ((void)0)

#endif
