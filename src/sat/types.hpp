// types.hpp — basic types for the CDCL SAT solver.
//
// The solver uses MiniSat-style literal encoding: variable v has positive
// literal 2v and negative literal 2v+1.  Note this differs from the AIG
// encoding only in that SAT variable 0 is an ordinary variable, not a
// constant.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace itpseq::sat {

using Var = std::uint32_t;
using Lit = std::uint32_t;

inline constexpr Var kNoVar = std::numeric_limits<Var>::max();
inline constexpr Lit kNoLit = std::numeric_limits<Lit>::max();

constexpr Lit mk_lit(Var v, bool sign = false) {
  return (v << 1) | static_cast<Lit>(sign);
}
constexpr Var var(Lit l) { return l >> 1; }
constexpr bool sign(Lit l) { return (l & 1u) != 0; }
constexpr Lit neg(Lit l) { return l ^ 1u; }

/// Three-valued logic for assignments.
enum class LBool : std::uint8_t { kTrue = 0, kFalse = 1, kUndef = 2 };

inline LBool lbool_xor(LBool b, bool s) {
  if (b == LBool::kUndef) return b;
  return static_cast<LBool>(static_cast<std::uint8_t>(b) ^ static_cast<std::uint8_t>(s));
}

/// Solver verdicts.  kUnknown is returned when a conflict or time budget
/// expires before a decision is reached.
enum class Status : std::uint8_t { kSat, kUnsat, kUnknown };

/// Identifier of a clause in the proof log.  Ids are unique over the life of
/// a solver and never reused, so resolution chains stay valid even after the
/// learned-clause database is reduced.
using ClauseId = std::uint32_t;
inline constexpr ClauseId kNoClauseId = std::numeric_limits<ClauseId>::max();

}  // namespace itpseq::sat
