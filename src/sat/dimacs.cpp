#include "sat/dimacs.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "sat/solver.hpp"

namespace itpseq::sat {

DimacsProblem read_dimacs(std::istream& in) {
  DimacsProblem p;
  std::string line;
  bool header_seen = false;
  std::uint32_t current_label = 0;
  std::size_t expected_clauses = 0;
  std::vector<Lit> clause;

  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == 'c') {
      std::istringstream cs(line);
      std::string c, word;
      cs >> c >> word;
      if (word == "part") {
        if (!(cs >> current_label))
          throw std::runtime_error("dimacs: malformed 'c part' line");
      }
      continue;
    }
    if (line[0] == 'p') {
      std::istringstream ps(line);
      std::string ptok, fmt;
      if (!(ps >> ptok >> fmt >> p.num_vars >> expected_clauses) || fmt != "cnf")
        throw std::runtime_error("dimacs: bad problem line");
      header_seen = true;
      continue;
    }
    if (!header_seen) throw std::runtime_error("dimacs: clause before header");
    std::istringstream ls(line);
    long long v;
    while (ls >> v) {
      if (v == 0) {
        p.clauses.push_back(clause);
        p.labels.push_back(current_label);
        clause.clear();
      } else {
        unsigned var_idx = static_cast<unsigned>(v < 0 ? -v : v);
        if (var_idx > p.num_vars)
          throw std::runtime_error("dimacs: variable out of range");
        clause.push_back(mk_lit(var_idx - 1, v < 0));
      }
    }
  }
  if (!header_seen) throw std::runtime_error("dimacs: missing header");
  if (!clause.empty()) {
    // Trailing clause without terminating 0 — accept it.
    p.clauses.push_back(clause);
    p.labels.push_back(current_label);
  }
  return p;
}

DimacsProblem read_dimacs_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("dimacs: cannot open '" + path + "'");
  return read_dimacs(in);
}

void write_dimacs(const DimacsProblem& p, std::ostream& out) {
  out << "p cnf " << p.num_vars << ' ' << p.clauses.size() << '\n';
  std::uint32_t current_label = 0;
  bool labeled = false;
  for (std::uint32_t l : p.labels)
    if (l != 0) labeled = true;
  for (std::size_t i = 0; i < p.clauses.size(); ++i) {
    if (labeled && p.labels[i] != current_label) {
      current_label = p.labels[i];
      out << "c part " << current_label << '\n';
    }
    for (Lit l : p.clauses[i])
      out << (sign(l) ? -static_cast<long long>(var(l) + 1)
                      : static_cast<long long>(var(l) + 1))
          << ' ';
    out << "0\n";
  }
}

bool load_dimacs(const DimacsProblem& p, Solver& solver) {
  while (solver.num_vars() < p.num_vars) solver.new_var();
  bool ok = true;
  for (std::size_t i = 0; i < p.clauses.size(); ++i)
    ok = solver.add_clause(p.clauses[i], p.labels[i]) && ok;
  return ok;
}

}  // namespace itpseq::sat
