// blif.hpp — reader/writer for the Berkeley Logic Interchange Format.
//
// Covers the structural subset used by logic-synthesis flows (and by the
// academic circuits the paper's suite descends from): .model / .inputs /
// .outputs / .latch / .names with sum-of-products covers / .end.
// Hierarchical constructs (.subckt, .search) and multiple .model sections
// are rejected with a descriptive error.
//
// Semantics implemented exactly per the BLIF report:
//   * a .names cover with output plane '1' is the OR of its cubes, with
//     '0' the complement of the OR of its cubes;
//   * an empty cover is constant 0; a single empty-input row "1" (or the
//     bare ".names out" + "1") is constant 1;
//   * .latch <next> <out> [<type> <clock>] [<init>], init in {0,1,2,3}
//     (2 = don't care, 3 = unknown; both map to LatchInit::kUndef).
//
// Reading produces an Aig whose outputs are the .outputs signals
// (interpreted downstream as bad signals, matching the AIGER reader's
// convention).  Writing emits one two-input .names per AND node.
#pragma once

#include <iosfwd>
#include <string>

#include "aig/aig.hpp"

namespace itpseq::io {

/// Parse a BLIF stream.  Throws std::runtime_error with a line-numbered
/// message on malformed input.
aig::Aig read_blif(std::istream& in);

/// Load a BLIF file from disk.
aig::Aig read_blif_file(const std::string& path);

/// Write `g` as a flat BLIF model named `model_name`.
void write_blif(const aig::Aig& g, std::ostream& out,
                const std::string& model_name = "itpseq");

/// Write to a file.
void write_blif_file(const aig::Aig& g, const std::string& path,
                     const std::string& model_name = "itpseq");

}  // namespace itpseq::io
