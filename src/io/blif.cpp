#include "io/blif.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "util/fault.hpp"

namespace itpseq::io {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& msg) {
  throw std::runtime_error("blif: line " + std::to_string(line) + ": " + msg);
}

/// One .names directive: a single-output SOP cover.
struct Cover {
  std::vector<std::string> inputs;  // signal names
  std::string output;
  std::vector<std::string> cubes;   // input-plane rows, '0'/'1'/'-'
  bool on_set = true;               // output-plane value of the rows
  std::size_t line = 0;
};

struct LatchDecl {
  std::string next;
  std::string out;
  aig::LatchInit init = aig::LatchInit::kUndef;
  std::size_t line = 0;
};

/// Raw token stream with BLIF line-continuation ('\') handling.
std::vector<std::pair<std::vector<std::string>, std::size_t>> tokenize(
    std::istream& in) {
  std::vector<std::pair<std::vector<std::string>, std::size_t>> lines;
  std::string raw;
  std::size_t lineno = 0, start = 0;
  std::string pending;
  while (std::getline(in, raw)) {
    ++lineno;
    if (std::size_t hash = raw.find('#'); hash != std::string::npos)
      raw.erase(hash);
    bool cont = false;
    if (!raw.empty() && raw.back() == '\\') {
      raw.pop_back();
      cont = true;
    }
    if (pending.empty()) start = lineno;
    pending += raw;
    pending += ' ';
    if (cont) continue;
    std::istringstream ss(pending);
    std::vector<std::string> toks;
    for (std::string t; ss >> t;) toks.push_back(t);
    if (!toks.empty()) lines.push_back({std::move(toks), start});
    pending.clear();
  }
  return lines;
}

class BlifParser {
 public:
  aig::Aig parse(std::istream& in) {
    auto lines = tokenize(in);
    std::size_t i = 0;
    bool have_model = false, ended = false;
    while (i < lines.size()) {
      auto& [toks, line] = lines[i];
      const std::string& kw = toks[0];
      if (kw == ".model") {
        if (have_model) fail(line, "multiple .model sections not supported");
        have_model = true;
        ++i;
      } else if (kw == ".inputs") {
        for (std::size_t t = 1; t < toks.size(); ++t) inputs_.push_back(toks[t]);
        ++i;
      } else if (kw == ".outputs") {
        for (std::size_t t = 1; t < toks.size(); ++t)
          outputs_.push_back(toks[t]);
        ++i;
      } else if (kw == ".latch") {
        parse_latch(toks, line);
        ++i;
      } else if (kw == ".names") {
        i = parse_names(lines, i);
      } else if (kw == ".end") {
        ended = true;
        ++i;
        break;
      } else if (kw == ".subckt" || kw == ".search" || kw == ".gate" ||
                 kw == ".mlatch") {
        fail(line, "hierarchical construct '" + kw + "' not supported");
      } else if (kw[0] == '.') {
        ++i;  // ignore unknown dot-directives (.default_input_arrival etc.)
      } else {
        fail(line, "unexpected token '" + kw + "'");
      }
    }
    (void)ended;  // .end is optional in practice
    return elaborate();
  }

 private:
  void parse_latch(const std::vector<std::string>& toks, std::size_t line) {
    if (toks.size() < 3) fail(line, ".latch needs input and output");
    LatchDecl l;
    l.next = toks[1];
    l.out = toks[2];
    l.line = line;
    // Optional [type control] then optional init value.
    std::size_t t = 3;
    if (toks.size() >= 5 &&
        (toks[3] == "fe" || toks[3] == "re" || toks[3] == "ah" ||
         toks[3] == "al" || toks[3] == "as"))
      t = 5;  // skip type + control
    if (t < toks.size()) {
      const std::string& v = toks[t];
      if (v == "0") l.init = aig::LatchInit::kZero;
      else if (v == "1") l.init = aig::LatchInit::kOne;
      else if (v == "2" || v == "3") l.init = aig::LatchInit::kUndef;
      else fail(line, "bad latch init value '" + v + "'");
    }
    latches_.push_back(std::move(l));
  }

  std::size_t parse_names(
      const std::vector<std::pair<std::vector<std::string>, std::size_t>>&
          lines,
      std::size_t i) {
    auto& [toks, line] = lines[i];
    if (toks.size() < 2) fail(line, ".names needs an output");
    Cover c;
    c.line = line;
    c.output = toks.back();
    c.inputs.assign(toks.begin() + 1, toks.end() - 1);
    ++i;
    bool first_row = true;
    while (i < lines.size() && lines[i].first[0][0] != '.') {
      const auto& row = lines[i].first;
      const std::size_t rline = lines[i].second;
      std::string plane;
      char out_val;
      if (c.inputs.empty()) {
        // Constant: a single output-plane token per row.
        if (row.size() != 1 || row[0].size() != 1)
          fail(rline, "bad constant cover row");
        plane.clear();
        out_val = row[0][0];
      } else {
        if (row.size() != 2) fail(rline, "cover row needs plane and output");
        plane = row[0];
        if (plane.size() != c.inputs.size())
          fail(rline, "cover row width mismatch");
        if (row[1].size() != 1) fail(rline, "bad output plane");
        out_val = row[1][0];
      }
      if (out_val != '0' && out_val != '1') fail(rline, "bad output value");
      bool on = out_val == '1';
      if (first_row) {
        c.on_set = on;
        first_row = false;
      } else if (on != c.on_set) {
        fail(rline, "mixed on-set and off-set rows in one cover");
      }
      for (char ch : plane)
        if (ch != '0' && ch != '1' && ch != '-')
          fail(rline, "bad input plane character");
      c.cubes.push_back(plane);
      ++i;
    }
    if (!covers_.emplace(c.output, std::move(c)).second)
      fail(line, "signal '" + toks.back() + "' defined twice");
    return i;
  }

  aig::Aig elaborate() {
    aig::Aig g;
    for (const std::string& name : inputs_) {
      if (lits_.count(name)) fail(0, "input '" + name + "' defined twice");
      lits_[name] = g.add_input(name);
    }
    for (const LatchDecl& l : latches_) {
      if (lits_.count(l.out))
        fail(l.line, "latch output '" + l.out + "' defined twice");
      lits_[l.out] = g.add_latch(l.init, l.out);
    }
    for (const std::string& name : outputs_)
      g.add_output(resolve(g, name, 0), name);
    for (const LatchDecl& l : latches_)
      g.set_latch_next(lits_.at(l.out), resolve(g, l.next, 0));
    return g;
  }

  /// Literal of a named signal, elaborating its cover on demand.
  aig::Lit resolve(aig::Aig& g, const std::string& name, unsigned depth) {
    if (auto it = lits_.find(name); it != lits_.end()) return it->second;
    auto cit = covers_.find(name);
    if (cit == covers_.end())
      throw std::runtime_error("blif: undefined signal '" + name + "'");
    if (depth > covers_.size())
      fail(cit->second.line, "combinational cycle through '" + name + "'");
    const Cover& c = cit->second;
    std::vector<aig::Lit> ins;
    ins.reserve(c.inputs.size());
    for (const std::string& in : c.inputs)
      ins.push_back(resolve(g, in, depth + 1));
    std::vector<aig::Lit> cubes;
    cubes.reserve(c.cubes.size());
    for (const std::string& plane : c.cubes) {
      std::vector<aig::Lit> factors;
      for (std::size_t b = 0; b < plane.size(); ++b) {
        if (plane[b] == '-') continue;
        factors.push_back(aig::lit_xor(ins[b], plane[b] == '0'));
      }
      cubes.push_back(g.make_and_many(factors));
    }
    aig::Lit f = g.make_or_many(cubes);
    if (!c.on_set) f = aig::lit_not(f);
    if (f > aig::kTrue && g.name(aig::lit_var(f)).empty())
      g.set_name(aig::lit_var(f), name);
    lits_[name] = f;
    return f;
  }

  std::vector<std::string> inputs_, outputs_;
  std::vector<LatchDecl> latches_;
  std::unordered_map<std::string, Cover> covers_;
  std::unordered_map<std::string, aig::Lit> lits_;
};

/// Stable printable name for an AIG variable.
std::string var_name(const aig::Aig& g, aig::Var v) {
  const std::string& n = g.name(v);
  if (!n.empty()) return n;
  return "n" + std::to_string(v);
}

std::string lit_expr(const aig::Aig& g, aig::Lit l,
                     std::unordered_map<aig::Lit, std::string>& inv_names,
                     std::ostream& out) {
  if (l == aig::kFalse) return "blif_const0";
  if (l == aig::kTrue) return "blif_const1";
  if (!aig::lit_sign(l)) return var_name(g, aig::lit_var(l));
  // Complemented literal: emit (once) an inverter pseudo-signal.
  auto it = inv_names.find(l);
  if (it != inv_names.end()) return it->second;
  std::string base = var_name(g, aig::lit_var(l));
  std::string inv = base + "_bar";
  out << ".names " << base << " " << inv << "\n0 1\n";
  inv_names.emplace(l, inv);
  return inv;
}

}  // namespace

aig::Aig read_blif(std::istream& in) {
  ITPSEQ_FAULT_POINT("blif.load");
  return BlifParser().parse(in);
}

aig::Aig read_blif_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("blif: cannot open " + path);
  return read_blif(in);
}

void write_blif(const aig::Aig& g, std::ostream& out,
                const std::string& model_name) {
  out << ".model " << model_name << "\n";
  out << ".inputs";
  for (std::size_t i = 0; i < g.num_inputs(); ++i)
    out << " " << var_name(g, aig::lit_var(g.input(i)));
  out << "\n.outputs";
  for (std::size_t i = 0; i < g.num_outputs(); ++i)
    out << " o" << i;
  out << "\n";

  std::unordered_map<aig::Lit, std::string> inv;
  // Constants, emitted unconditionally for simplicity.
  out << ".names blif_const0\n";   // empty cover = constant 0
  out << ".names blif_const1\n1\n";

  // AND gates in topological (index) order.
  for (aig::Var v = 1; v < g.num_vars(); ++v) {
    if (!g.is_and(v)) continue;
    const aig::Node& n = g.node(v);
    std::string a = lit_expr(g, n.fanin0, inv, out);
    std::string b = lit_expr(g, n.fanin1, inv, out);
    out << ".names " << a << " " << b << " " << var_name(g, v) << "\n11 1\n";
  }
  // Latches (after gates so inverter pseudo-signals exist before use in
  // text order; BLIF is declaration-order independent, but readable output
  // helps humans).
  for (std::size_t i = 0; i < g.num_latches(); ++i) {
    aig::Lit next = g.latch_next(i);
    std::string nx = lit_expr(g, next, inv, out);
    int init;
    switch (g.latch_init(i)) {
      case aig::LatchInit::kZero: init = 0; break;
      case aig::LatchInit::kOne: init = 1; break;
      default: init = 2; break;
    }
    out << ".latch " << nx << " " << var_name(g, aig::lit_var(g.latch(i)))
        << " " << init << "\n";
  }
  // Output bindings.
  for (std::size_t i = 0; i < g.num_outputs(); ++i) {
    std::string src = lit_expr(g, g.output(i), inv, out);
    out << ".names " << src << " o" << i << "\n1 1\n";
  }
  out << ".end\n";
}

void write_blif_file(const aig::Aig& g, const std::string& path,
                     const std::string& model_name) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("blif: cannot open " + path);
  write_blif(g, out, model_name);
}

}  // namespace itpseq::io
