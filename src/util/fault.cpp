#include "util/fault.hpp"

#include <chrono>
#include <cstdlib>
#include <mutex>
#include <new>
#include <stdexcept>
#include <thread>
#include <vector>

namespace itpseq::util::fault {

namespace detail {
std::atomic<bool> g_armed{false};
}  // namespace detail

namespace {

enum class Kind : std::uint8_t { kBadAlloc, kError, kStall };

struct Site {
  std::string name;
  std::uint64_t nth = 1;    // first firing evaluation (1-based)
  std::uint64_t count = 1;  // firing window length
  Kind kind = Kind::kBadAlloc;
  unsigned stall_ms = 250;
  std::uint64_t hits = 0;  // evaluations seen (guarded by g_mu)
};

std::mutex g_mu;
std::vector<Site> g_sites;

[[noreturn]] void bad_spec(const std::string& spec, const char* why) {
  throw std::invalid_argument("fault spec '" + spec + "': " + why);
}

std::uint64_t parse_u64(const std::string& spec, const std::string& field,
                        const char* what) {
  if (field.empty() || field.find_first_not_of("0123456789") != std::string::npos)
    bad_spec(spec, what);
  return std::stoull(field);
}

Site parse_spec(const std::string& spec) {
  Site s;
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t colon = spec.find(':', start);
    if (colon == std::string::npos) colon = spec.size();
    parts.push_back(spec.substr(start, colon - start));
    start = colon + 1;
  }
  if (parts.size() < 2 || parts.size() > 4) bad_spec(spec, "want site:nth[:count[:kind]]");
  if (parts[0].empty()) bad_spec(spec, "empty site name");
  s.name = parts[0];
  s.nth = parse_u64(spec, parts[1], "nth must be a positive integer");
  if (s.nth == 0) bad_spec(spec, "nth is 1-based");
  if (parts.size() >= 3) {
    s.count = parse_u64(spec, parts[2], "count must be a positive integer");
    if (s.count == 0) bad_spec(spec, "count must be >= 1");
  }
  if (parts.size() == 4) {
    const std::string& k = parts[3];
    if (k == "oom") {
      s.kind = Kind::kBadAlloc;
    } else if (k == "error") {
      s.kind = Kind::kError;
    } else if (k.rfind("stall", 0) == 0) {
      s.kind = Kind::kStall;
      if (k.size() > 5)
        s.stall_ms = static_cast<unsigned>(
            parse_u64(spec, k.substr(5), "stall duration must be integer ms"));
    } else {
      bad_spec(spec, "kind must be oom | error | stall[MS]");
    }
  }
  return s;
}

}  // namespace

void configure(const std::string& plan) {
  std::vector<Site> parsed;
  std::size_t i = 0;
  while (i < plan.size()) {
    std::size_t end = plan.find_first_of(", ", i);
    if (end == std::string::npos) end = plan.size();
    if (end > i) parsed.push_back(parse_spec(plan.substr(i, end - i)));
    i = end + 1;
  }
  if (parsed.empty()) return;
  std::lock_guard<std::mutex> lock(g_mu);
  for (Site& s : parsed) g_sites.push_back(std::move(s));
  detail::g_armed.store(true, std::memory_order_relaxed);
}

void configure_from_env() {
  const char* plan = std::getenv("ITPSEQ_FAULTS");
  if (plan != nullptr && plan[0] != '\0') configure(plan);
}

void clear() {
  std::lock_guard<std::mutex> lock(g_mu);
  g_sites.clear();
  detail::g_armed.store(false, std::memory_order_relaxed);
}

std::uint64_t hits(const char* site) {
  std::lock_guard<std::mutex> lock(g_mu);
  std::uint64_t total = 0;
  for (const Site& s : g_sites)
    if (s.name == site) total += s.hits;
  return total;
}

void point(const char* site) {
  Kind fire = Kind::kBadAlloc;
  unsigned stall_ms = 0;
  bool firing = false;
  std::string name;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    for (Site& s : g_sites) {
      if (s.name != site) continue;
      ++s.hits;
      if (!firing && s.hits >= s.nth && s.hits < s.nth + s.count) {
        firing = true;
        fire = s.kind;
        stall_ms = s.stall_ms;
        name = s.name;
      }
    }
  }
  if (!firing) return;
  switch (fire) {
    case Kind::kBadAlloc:
      throw std::bad_alloc();
    case Kind::kError:
      throw std::runtime_error("injected fault at " + name);
    case Kind::kStall:
      // A bounded stall: long enough to blow any test deadline, short
      // enough that joins still complete (engines never detach work, so an
      // unbounded block would deadlock the portfolio's join-all contract).
      std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms));
      return;
  }
}

}  // namespace itpseq::util::fault
