#include "util/mem_budget.hpp"

#include <chrono>
#include <cstdio>

#ifdef __linux__
#include <unistd.h>
#endif

namespace itpseq::util {

namespace {
constexpr long long kPollIntervalUs = 4000;
}  // namespace

MemoryBudget& MemoryBudget::instance() {
  static MemoryBudget budget;
  return budget;
}

void MemoryBudget::set_limit_mb(std::size_t mb) {
  limit_bytes_.store(mb * std::size_t{1024} * 1024, std::memory_order_relaxed);
  level_.store(0, std::memory_order_relaxed);
  last_poll_us_.store(0, std::memory_order_relaxed);
}

int MemoryBudget::level_for(std::size_t usage_bytes, std::size_t limit_bytes) {
  if (limit_bytes == 0) return 0;
  if (usage_bytes >= limit_bytes) return 2;
  // Soft threshold at 80% of the limit, computed without overflow-prone
  // division: usage/limit >= 4/5  <=>  5*usage >= 4*limit.
  if (usage_bytes / 4 >= limit_bytes / 5) return 1;
  return 0;
}

std::size_t MemoryBudget::resident_bytes() {
#ifdef __linux__
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long vm_pages = 0, rss_pages = 0;
  int got = std::fscanf(f, "%llu %llu", &vm_pages, &rss_pages);
  std::fclose(f);
  if (got != 2) return 0;
  static const long page = sysconf(_SC_PAGESIZE);
  return static_cast<std::size_t>(rss_pages) * static_cast<std::size_t>(page);
#else
  return 0;
#endif
}

void MemoryBudget::poll() {
  std::size_t limit = limit_bytes_.load(std::memory_order_relaxed);
  if (limit == 0) return;
  const long long now = std::chrono::duration_cast<std::chrono::microseconds>(
                            std::chrono::steady_clock::now().time_since_epoch())
                            .count();
  long long last = last_poll_us_.load(std::memory_order_relaxed);
  if (now - last < kPollIntervalUs) return;
  // One thread refreshes per interval; the rest keep the cached level.
  if (!last_poll_us_.compare_exchange_strong(last, now, std::memory_order_relaxed))
    return;
  const int lv = level_for(resident_bytes(), limit);
  // The ladder only climbs: a transient dip below the threshold after a GC
  // must not re-enable the ballast that was just shed.
  int cur = level_.load(std::memory_order_relaxed);
  while (lv > cur &&
         !level_.compare_exchange_weak(cur, lv, std::memory_order_relaxed)) {
  }
}

void MemoryBudget::reset() {
  limit_bytes_.store(0, std::memory_order_relaxed);
  level_.store(0, std::memory_order_relaxed);
  last_poll_us_.store(0, std::memory_order_relaxed);
}

}  // namespace itpseq::util
