// retry.hpp — bounded-retry / exponential-backoff policy for relaunching
// failed work (the portfolio's self-healing member restarts).
//
// A member whose run *errored* (Verdict::kError — a contained crash, not a
// healthy out-of-budget kUnknown) may be worth relaunching: the failure can
// be transient (a memory spike while a peer allocated its arena) or
// avoidable under a degraded configuration (see mc::degrade_for_retry).
// The policy bounds how often and how eagerly that happens: at most
// `max_retries` relaunches, each preceded by an exponentially growing
// backoff so a persistently failing member cannot busy-loop, with
// deterministic jitter so members that died together (e.g. all from one
// memory spike) do not relaunch in lockstep and spike again.
//
// Jitter is derived from a seed via splitmix64 — never from wall-clock or
// rand() (lint rule L5) — so a run's relaunch schedule is reproducible.
#pragma once

#include <atomic>
#include <cstdint>

namespace itpseq::util {

struct RestartPolicy {
  /// Relaunches allowed per member after an errored run (0 disables
  /// self-healing entirely; the first error then sticks as the outcome).
  unsigned max_retries = 2;
  double backoff_base_sec = 0.25;  ///< delay before the first relaunch
  double backoff_factor = 2.0;     ///< delay growth per further relaunch
  /// +/- fraction of jitter applied to each delay (0 = none, 0.25 =
  /// uniform in [0.75x, 1.25x]).
  double jitter_frac = 0.25;
};

/// Delay before relaunch number `attempt` (0-based): base * factor^attempt,
/// jittered deterministically from (seed, attempt).
double backoff_delay_sec(const RestartPolicy& p, unsigned attempt,
                         std::uint64_t seed);

/// Sleep for `seconds`, polling `cancel` roughly every 10 ms so a portfolio
/// winner never has to wait out a loser's backoff.  Null cancel = plain
/// sleep.  Returns true if the sleep completed, false if cancelled early.
bool interruptible_sleep(double seconds, const std::atomic<bool>* cancel);

}  // namespace itpseq::util
