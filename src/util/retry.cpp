#include "util/retry.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

namespace itpseq::util {

namespace {

/// splitmix64 (Steele/Lea/Flood) — one multiply-xor round per draw; used
/// only for jitter, where quality requirements are minimal but determinism
/// is mandatory (L5 bans rand()/time-seeded generators).
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

double backoff_delay_sec(const RestartPolicy& p, unsigned attempt,
                         std::uint64_t seed) {
  double d = p.backoff_base_sec;
  for (unsigned a = 0; a < attempt; ++a) d *= p.backoff_factor;
  if (p.jitter_frac > 0.0) {
    // 53 high bits -> uniform double in [0, 1), mapped to [-1, 1).
    std::uint64_t r = splitmix64(seed ^ (0x100000001ull * (attempt + 1)));
    double u = static_cast<double>(r >> 11) * (1.0 / 9007199254740992.0);
    d *= 1.0 + p.jitter_frac * (2.0 * u - 1.0);
  }
  return std::max(d, 0.0);
}

bool interruptible_sleep(double seconds, const std::atomic<bool>* cancel) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(std::max(seconds, 0.0)));
  for (;;) {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed))
      return false;
    auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return true;
    auto chunk = std::min<std::chrono::steady_clock::duration>(
        deadline - now, std::chrono::milliseconds(10));
    std::this_thread::sleep_for(chunk);
  }
}

}  // namespace itpseq::util
