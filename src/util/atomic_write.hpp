// atomic_write.hpp — crash-safe file publication (write-temp-then-rename).
//
// Writing a checkpoint (or any file another process may read back) straight
// into its final path lets a crash — or a reader racing the writer —
// observe a partial file.  This helper makes publication atomic at the
// filesystem level: the body goes to a sibling temp file first (same
// directory, so the rename cannot cross filesystems), is flushed and
// closed, and only then renamed over the final path; std::rename replaces
// the target atomically on POSIX.  Readers therefore see either the old
// complete file or the new complete file, never a prefix.
//
// Lint rule L7 (scripts/lint/rules/l7_atomic_writes.py) enforces that
// src/mc/ and src/util/ code writing to user-supplied final paths goes
// through this helper instead of a bare fopen/ofstream.
#pragma once

#include <string>

namespace itpseq::util {

/// Atomically replace `path` with `body`.  On any I/O failure the final
/// path is left untouched, the temp file is removed, *err (when non-null)
/// receives a description, and false is returned.  Never throws.
bool atomic_write_file(const std::string& path, const std::string& body,
                       std::string* err = nullptr);

}  // namespace itpseq::util
