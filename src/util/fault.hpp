// fault.hpp — deterministic fault injection for containment testing.
//
// Robust failure handling is only trustworthy if every containment path is
// exercised on purpose: this registry lets tests and CI raise a fault at a
// *named site* on a *chosen hit* — the same run, every run — instead of
// hoping an OOM strikes where the try/catch is.
//
// Seeded sites (grep ITPSEQ_FAULT_POINT for the ground truth):
//   sat.arena         clause-arena allocation (sat::Solver::alloc_clause)
//   sat.inprocess     entry of an inprocessing round
//   itp.extract       interpolant extraction from a resolution proof
//   aig.load          AIGER parsing (read_aiger)
//   blif.load         BLIF parsing (read_blif)
//   exchange.publish  LemmaExchange::publish
//   exchange.fetch    LemmaExchange::fetch
//   obs.drain         trace-sink drainer batch processing
//   snapshot.write    lemma-checkpoint publication (write_snapshot_file)
//   snapshot.read     lemma-checkpoint load (read_snapshot_file)
//
// A plan is a comma/space-separated list of specs:
//
//     site:nth[:count[:kind]]
//
// meaning: evaluations nth .. nth+count-1 of `site` (1-based, count
// default 1) raise the fault.  `kind` is one of
//   oom      throw std::bad_alloc            (default)
//   error    throw std::runtime_error
//   stall    block for the stall duration (default 250 ms, `stallN` = N ms)
//            — models an engine stuck outside its cancellation poll loop,
//            which is what the portfolio watchdog exists to escalate.
//
// Plans come from the ITPSEQ_FAULTS environment variable
// (configure_from_env, called by the tools) or `itpseq-mc --inject-fault`.
//
// Gating follows the obs "off means free" rule: with no plan armed — the
// only state production binaries ever run in — every ITPSEQ_FAULT_POINT is
// one relaxed atomic load and a predicted-not-taken branch; no allocation,
// no lock, no syscalls.  The slow path (point()) takes a mutex; arming or
// clearing a plan while engines are running is not supported.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace itpseq::util::fault {

namespace detail {
extern std::atomic<bool> g_armed;
}  // namespace detail

/// True iff a fault plan is armed.  One relaxed load — the gate every
/// ITPSEQ_FAULT_POINT sits behind.
inline bool enabled() {
  return detail::g_armed.load(std::memory_order_relaxed);
}

/// Arm the sites described by `plan` (format above; appends to any sites
/// already armed).  Throws std::invalid_argument on a malformed spec.
void configure(const std::string& plan);

/// configure(getenv("ITPSEQ_FAULTS")); no-op when the variable is unset.
void configure_from_env();

/// Disarm and forget every site (tests; also resets hit counters).
void clear();

/// Evaluations of `site` so far (0 when the site is not armed).
std::uint64_t hits(const char* site);

/// Slow path: evaluate `site` against the armed plan and fire if its window
/// is reached.  Only call behind enabled() — use ITPSEQ_FAULT_POINT.
void point(const char* site);

}  // namespace itpseq::util::fault

/// A named fault site.  Free when no plan is armed; see fault.hpp header.
#define ITPSEQ_FAULT_POINT(site)                          \
  do {                                                    \
    if (::itpseq::util::fault::enabled())                 \
      ::itpseq::util::fault::point(site);                 \
  } while (0)
