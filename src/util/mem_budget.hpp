// mem_budget.hpp — process-wide memory budget with a degradation ladder.
//
// `itpseq-mc --mem-limit MB` arms a resident-set budget that the SAT core
// polls at the same places it already polls the wall clock.  Crossing it is
// graded, not binary:
//
//   level 0  fine        below 80% of the limit; no behavior change
//   level 1  soft        >= 80%: shed ballast — skip inprocessing rounds
//                        (the occurrence index is the largest transient
//                        allocation), clamp the learnt-clause cap, and run
//                        an aggressive reduce_db + GC once
//   level 2  hard        at/over the limit: bail out of search with
//                        kUnknown and whatever stats accumulated, before
//                        the allocator aborts the process for us
//
// Like the wall-clock budget, this is cooperative: poll() is throttled and
// reads /proc/self/statm, and `hard()`/`soft()` are single relaxed atomic
// loads, so an unlimited run (the default) costs one branch per poll site.
#pragma once

#include <atomic>
#include <cstddef>

namespace itpseq::util {

class MemoryBudget {
 public:
  static MemoryBudget& instance();

  /// Arm a resident-set budget of `mb` megabytes; 0 disarms.
  void set_limit_mb(std::size_t mb);

  /// True iff a budget is armed.  Guard for poll() call sites.
  bool limited() const { return limit_bytes_.load(std::memory_order_relaxed) != 0; }

  /// Refresh the pressure level from current resident-set size.  Throttled
  /// internally (~4 ms); cheap enough for conflict-loop cadence.  No-op
  /// when unlimited.
  void poll();

  /// Pressure level as of the last poll: 0 fine, 1 soft, 2 hard.
  int level() const { return level_.load(std::memory_order_relaxed); }
  bool soft() const { return level() >= 1; }
  bool hard() const { return level() >= 2; }

  /// Pure grading rule (unit-testable): map usage against a limit to a
  /// ladder level.  limit == 0 means unlimited.
  static int level_for(std::size_t usage_bytes, std::size_t limit_bytes);

  /// Current resident-set size in bytes (0 where unsupported).
  static std::size_t resident_bytes();

  /// Disarm and reset all state (tests).
  void reset();

 private:
  MemoryBudget() = default;

  std::atomic<std::size_t> limit_bytes_{0};
  std::atomic<int> level_{0};
  std::atomic<long long> last_poll_us_{0};
};

}  // namespace itpseq::util
