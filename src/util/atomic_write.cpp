#include "util/atomic_write.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace itpseq::util {

namespace {

void describe(std::string* err, const char* stage, const std::string& path) {
  if (err == nullptr) return;
  *err = std::string(stage) + " " + path + ": " + std::strerror(errno);
}

}  // namespace

bool atomic_write_file(const std::string& path, const std::string& body,
                       std::string* err) {
  // The temp file must live in the target's directory — rename cannot
  // cross filesystems.
  std::string tmp = path + ".tmp";
  // This file is L7's by-path exemption: the fopen below targets the temp
  // sibling, never the final path — it IS the atomic temp+rename helper.
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    describe(err, "open", tmp);
    return false;
  }
  bool ok = body.empty() ||
            std::fwrite(body.data(), 1, body.size(), f) == body.size();
  if (ok) ok = std::fflush(f) == 0;
  if (std::fclose(f) != 0) ok = false;
  if (!ok) {
    describe(err, "write", tmp);
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    describe(err, "rename", path);
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace itpseq::util
