# Empty compiler generated dependencies file for interpolant_strength.
# This may be replaced when dependencies are built.
