file(REMOVE_RECURSE
  "CMakeFiles/interpolant_strength.dir/examples/interpolant_strength.cpp.o"
  "CMakeFiles/interpolant_strength.dir/examples/interpolant_strength.cpp.o.d"
  "interpolant_strength"
  "interpolant_strength.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interpolant_strength.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
