# Empty dependencies file for interpolant_strength.
# This may be replaced when dependencies are built.
