file(REMOVE_RECURSE
  "CMakeFiles/constraints_test.dir/tests/constraints_test.cpp.o"
  "CMakeFiles/constraints_test.dir/tests/constraints_test.cpp.o.d"
  "constraints_test"
  "constraints_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constraints_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
