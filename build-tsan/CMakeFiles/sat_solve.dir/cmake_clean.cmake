file(REMOVE_RECURSE
  "CMakeFiles/sat_solve.dir/examples/sat_solve.cpp.o"
  "CMakeFiles/sat_solve.dir/examples/sat_solve.cpp.o.d"
  "sat_solve"
  "sat_solve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sat_solve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
