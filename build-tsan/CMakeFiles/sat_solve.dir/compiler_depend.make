# Empty compiler generated dependencies file for sat_solve.
# This may be replaced when dependencies are built.
