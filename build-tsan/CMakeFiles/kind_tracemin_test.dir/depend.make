# Empty dependencies file for kind_tracemin_test.
# This may be replaced when dependencies are built.
