file(REMOVE_RECURSE
  "CMakeFiles/kind_tracemin_test.dir/tests/kind_tracemin_test.cpp.o"
  "CMakeFiles/kind_tracemin_test.dir/tests/kind_tracemin_test.cpp.o.d"
  "kind_tracemin_test"
  "kind_tracemin_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kind_tracemin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
