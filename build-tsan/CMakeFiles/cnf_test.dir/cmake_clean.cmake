file(REMOVE_RECURSE
  "CMakeFiles/cnf_test.dir/tests/cnf_test.cpp.o"
  "CMakeFiles/cnf_test.dir/tests/cnf_test.cpp.o.d"
  "cnf_test"
  "cnf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
