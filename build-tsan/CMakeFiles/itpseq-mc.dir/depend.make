# Empty dependencies file for itpseq-mc.
# This may be replaced when dependencies are built.
