file(REMOVE_RECURSE
  "CMakeFiles/itpseq-mc.dir/tools/itpseq-mc.cpp.o"
  "CMakeFiles/itpseq-mc.dir/tools/itpseq-mc.cpp.o.d"
  "itpseq-mc"
  "itpseq-mc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itpseq-mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
