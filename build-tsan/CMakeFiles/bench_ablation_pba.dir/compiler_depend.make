# Empty compiler generated dependencies file for bench_ablation_pba.
# This may be replaced when dependencies are built.
