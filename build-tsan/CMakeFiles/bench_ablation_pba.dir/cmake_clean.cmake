file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pba.dir/bench/bench_ablation_pba.cpp.o"
  "CMakeFiles/bench_ablation_pba.dir/bench/bench_ablation_pba.cpp.o.d"
  "bench_ablation_pba"
  "bench_ablation_pba.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pba.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
