file(REMOVE_RECURSE
  "CMakeFiles/bench_bmc_incremental.dir/bench/bench_bmc_incremental.cpp.o"
  "CMakeFiles/bench_bmc_incremental.dir/bench/bench_bmc_incremental.cpp.o.d"
  "bench_bmc_incremental"
  "bench_bmc_incremental.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bmc_incremental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
