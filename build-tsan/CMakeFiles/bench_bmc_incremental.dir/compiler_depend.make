# Empty compiler generated dependencies file for bench_bmc_incremental.
# This may be replaced when dependencies are built.
