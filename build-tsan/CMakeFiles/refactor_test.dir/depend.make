# Empty dependencies file for refactor_test.
# This may be replaced when dependencies are built.
