file(REMOVE_RECURSE
  "CMakeFiles/refactor_test.dir/tests/refactor_test.cpp.o"
  "CMakeFiles/refactor_test.dir/tests/refactor_test.cpp.o.d"
  "refactor_test"
  "refactor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refactor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
