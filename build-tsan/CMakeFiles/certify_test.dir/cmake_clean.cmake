file(REMOVE_RECURSE
  "CMakeFiles/certify_test.dir/tests/certify_test.cpp.o"
  "CMakeFiles/certify_test.dir/tests/certify_test.cpp.o.d"
  "certify_test"
  "certify_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/certify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
