# Empty dependencies file for certify_test.
# This may be replaced when dependencies are built.
