# Empty dependencies file for portfolio_demo.
# This may be replaced when dependencies are built.
