file(REMOVE_RECURSE
  "CMakeFiles/portfolio_demo.dir/examples/portfolio_demo.cpp.o"
  "CMakeFiles/portfolio_demo.dir/examples/portfolio_demo.cpp.o.d"
  "portfolio_demo"
  "portfolio_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/portfolio_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
