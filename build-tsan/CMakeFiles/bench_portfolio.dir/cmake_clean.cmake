file(REMOVE_RECURSE
  "CMakeFiles/bench_portfolio.dir/bench/bench_portfolio.cpp.o"
  "CMakeFiles/bench_portfolio.dir/bench/bench_portfolio.cpp.o.d"
  "bench_portfolio"
  "bench_portfolio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_portfolio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
