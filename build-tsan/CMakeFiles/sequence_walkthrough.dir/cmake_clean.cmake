file(REMOVE_RECURSE
  "CMakeFiles/sequence_walkthrough.dir/examples/sequence_walkthrough.cpp.o"
  "CMakeFiles/sequence_walkthrough.dir/examples/sequence_walkthrough.cpp.o.d"
  "sequence_walkthrough"
  "sequence_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sequence_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
