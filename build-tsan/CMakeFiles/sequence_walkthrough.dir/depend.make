# Empty dependencies file for sequence_walkthrough.
# This may be replaced when dependencies are built.
