# Empty dependencies file for abstraction_demo.
# This may be replaced when dependencies are built.
