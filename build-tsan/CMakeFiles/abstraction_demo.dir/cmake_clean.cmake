file(REMOVE_RECURSE
  "CMakeFiles/abstraction_demo.dir/examples/abstraction_demo.cpp.o"
  "CMakeFiles/abstraction_demo.dir/examples/abstraction_demo.cpp.o.d"
  "abstraction_demo"
  "abstraction_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abstraction_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
