# Empty dependencies file for export_suite.
# This may be replaced when dependencies are built.
