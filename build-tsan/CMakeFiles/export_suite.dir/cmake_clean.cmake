file(REMOVE_RECURSE
  "CMakeFiles/export_suite.dir/examples/export_suite.cpp.o"
  "CMakeFiles/export_suite.dir/examples/export_suite.cpp.o.d"
  "export_suite"
  "export_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
