# Empty compiler generated dependencies file for bench_ablation_cba.
# This may be replaced when dependencies are built.
