file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cba.dir/bench/bench_ablation_cba.cpp.o"
  "CMakeFiles/bench_ablation_cba.dir/bench/bench_ablation_cba.cpp.o.d"
  "bench_ablation_cba"
  "bench_ablation_cba.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cba.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
