file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_partitioned.dir/bench/bench_ablation_partitioned.cpp.o"
  "CMakeFiles/bench_ablation_partitioned.dir/bench/bench_ablation_partitioned.cpp.o.d"
  "bench_ablation_partitioned"
  "bench_ablation_partitioned.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_partitioned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
