# Empty dependencies file for bench_ablation_partitioned.
# This may be replaced when dependencies are built.
