file(REMOVE_RECURSE
  "CMakeFiles/optimize_circuit.dir/examples/optimize_circuit.cpp.o"
  "CMakeFiles/optimize_circuit.dir/examples/optimize_circuit.cpp.o.d"
  "optimize_circuit"
  "optimize_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimize_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
