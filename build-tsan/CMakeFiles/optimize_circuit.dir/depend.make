# Empty dependencies file for optimize_circuit.
# This may be replaced when dependencies are built.
