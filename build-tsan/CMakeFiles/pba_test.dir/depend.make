# Empty dependencies file for pba_test.
# This may be replaced when dependencies are built.
