file(REMOVE_RECURSE
  "CMakeFiles/pba_test.dir/tests/pba_test.cpp.o"
  "CMakeFiles/pba_test.dir/tests/pba_test.cpp.o.d"
  "pba_test"
  "pba_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pba_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
