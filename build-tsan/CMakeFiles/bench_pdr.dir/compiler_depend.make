# Empty compiler generated dependencies file for bench_pdr.
# This may be replaced when dependencies are built.
