file(REMOVE_RECURSE
  "CMakeFiles/bench_pdr.dir/bench/bench_pdr.cpp.o"
  "CMakeFiles/bench_pdr.dir/bench/bench_pdr.cpp.o.d"
  "bench_pdr"
  "bench_pdr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pdr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
