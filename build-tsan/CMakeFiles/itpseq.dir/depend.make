# Empty dependencies file for itpseq.
# This may be replaced when dependencies are built.
