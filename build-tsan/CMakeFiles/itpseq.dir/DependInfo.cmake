
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/aig/aig.cpp" "CMakeFiles/itpseq.dir/src/aig/aig.cpp.o" "gcc" "CMakeFiles/itpseq.dir/src/aig/aig.cpp.o.d"
  "/root/repo/src/aig/aiger_io.cpp" "CMakeFiles/itpseq.dir/src/aig/aiger_io.cpp.o" "gcc" "CMakeFiles/itpseq.dir/src/aig/aiger_io.cpp.o.d"
  "/root/repo/src/aig/compact.cpp" "CMakeFiles/itpseq.dir/src/aig/compact.cpp.o" "gcc" "CMakeFiles/itpseq.dir/src/aig/compact.cpp.o.d"
  "/root/repo/src/bdd/bdd.cpp" "CMakeFiles/itpseq.dir/src/bdd/bdd.cpp.o" "gcc" "CMakeFiles/itpseq.dir/src/bdd/bdd.cpp.o.d"
  "/root/repo/src/bdd/reach.cpp" "CMakeFiles/itpseq.dir/src/bdd/reach.cpp.o" "gcc" "CMakeFiles/itpseq.dir/src/bdd/reach.cpp.o.d"
  "/root/repo/src/bdd/reorder.cpp" "CMakeFiles/itpseq.dir/src/bdd/reorder.cpp.o" "gcc" "CMakeFiles/itpseq.dir/src/bdd/reorder.cpp.o.d"
  "/root/repo/src/bench_circuits/generators.cpp" "CMakeFiles/itpseq.dir/src/bench_circuits/generators.cpp.o" "gcc" "CMakeFiles/itpseq.dir/src/bench_circuits/generators.cpp.o.d"
  "/root/repo/src/bench_circuits/suite.cpp" "CMakeFiles/itpseq.dir/src/bench_circuits/suite.cpp.o" "gcc" "CMakeFiles/itpseq.dir/src/bench_circuits/suite.cpp.o.d"
  "/root/repo/src/cnf/tseitin.cpp" "CMakeFiles/itpseq.dir/src/cnf/tseitin.cpp.o" "gcc" "CMakeFiles/itpseq.dir/src/cnf/tseitin.cpp.o.d"
  "/root/repo/src/cnf/unroller.cpp" "CMakeFiles/itpseq.dir/src/cnf/unroller.cpp.o" "gcc" "CMakeFiles/itpseq.dir/src/cnf/unroller.cpp.o.d"
  "/root/repo/src/io/blif.cpp" "CMakeFiles/itpseq.dir/src/io/blif.cpp.o" "gcc" "CMakeFiles/itpseq.dir/src/io/blif.cpp.o.d"
  "/root/repo/src/itp/interpolate.cpp" "CMakeFiles/itpseq.dir/src/itp/interpolate.cpp.o" "gcc" "CMakeFiles/itpseq.dir/src/itp/interpolate.cpp.o.d"
  "/root/repo/src/itp/validate.cpp" "CMakeFiles/itpseq.dir/src/itp/validate.cpp.o" "gcc" "CMakeFiles/itpseq.dir/src/itp/validate.cpp.o.d"
  "/root/repo/src/mc/bmc.cpp" "CMakeFiles/itpseq.dir/src/mc/bmc.cpp.o" "gcc" "CMakeFiles/itpseq.dir/src/mc/bmc.cpp.o.d"
  "/root/repo/src/mc/certify.cpp" "CMakeFiles/itpseq.dir/src/mc/certify.cpp.o" "gcc" "CMakeFiles/itpseq.dir/src/mc/certify.cpp.o.d"
  "/root/repo/src/mc/engine.cpp" "CMakeFiles/itpseq.dir/src/mc/engine.cpp.o" "gcc" "CMakeFiles/itpseq.dir/src/mc/engine.cpp.o.d"
  "/root/repo/src/mc/factory.cpp" "CMakeFiles/itpseq.dir/src/mc/factory.cpp.o" "gcc" "CMakeFiles/itpseq.dir/src/mc/factory.cpp.o.d"
  "/root/repo/src/mc/itp_verif.cpp" "CMakeFiles/itpseq.dir/src/mc/itp_verif.cpp.o" "gcc" "CMakeFiles/itpseq.dir/src/mc/itp_verif.cpp.o.d"
  "/root/repo/src/mc/itpseq_verif.cpp" "CMakeFiles/itpseq.dir/src/mc/itpseq_verif.cpp.o" "gcc" "CMakeFiles/itpseq.dir/src/mc/itpseq_verif.cpp.o.d"
  "/root/repo/src/mc/kinduction.cpp" "CMakeFiles/itpseq.dir/src/mc/kinduction.cpp.o" "gcc" "CMakeFiles/itpseq.dir/src/mc/kinduction.cpp.o.d"
  "/root/repo/src/mc/lemma_exchange.cpp" "CMakeFiles/itpseq.dir/src/mc/lemma_exchange.cpp.o" "gcc" "CMakeFiles/itpseq.dir/src/mc/lemma_exchange.cpp.o.d"
  "/root/repo/src/mc/pdr.cpp" "CMakeFiles/itpseq.dir/src/mc/pdr.cpp.o" "gcc" "CMakeFiles/itpseq.dir/src/mc/pdr.cpp.o.d"
  "/root/repo/src/mc/portfolio.cpp" "CMakeFiles/itpseq.dir/src/mc/portfolio.cpp.o" "gcc" "CMakeFiles/itpseq.dir/src/mc/portfolio.cpp.o.d"
  "/root/repo/src/mc/sim.cpp" "CMakeFiles/itpseq.dir/src/mc/sim.cpp.o" "gcc" "CMakeFiles/itpseq.dir/src/mc/sim.cpp.o.d"
  "/root/repo/src/mc/state_space.cpp" "CMakeFiles/itpseq.dir/src/mc/state_space.cpp.o" "gcc" "CMakeFiles/itpseq.dir/src/mc/state_space.cpp.o.d"
  "/root/repo/src/mc/trace_min.cpp" "CMakeFiles/itpseq.dir/src/mc/trace_min.cpp.o" "gcc" "CMakeFiles/itpseq.dir/src/mc/trace_min.cpp.o.d"
  "/root/repo/src/mc/witness.cpp" "CMakeFiles/itpseq.dir/src/mc/witness.cpp.o" "gcc" "CMakeFiles/itpseq.dir/src/mc/witness.cpp.o.d"
  "/root/repo/src/opt/balance.cpp" "CMakeFiles/itpseq.dir/src/opt/balance.cpp.o" "gcc" "CMakeFiles/itpseq.dir/src/opt/balance.cpp.o.d"
  "/root/repo/src/opt/fraig.cpp" "CMakeFiles/itpseq.dir/src/opt/fraig.cpp.o" "gcc" "CMakeFiles/itpseq.dir/src/opt/fraig.cpp.o.d"
  "/root/repo/src/opt/refactor.cpp" "CMakeFiles/itpseq.dir/src/opt/refactor.cpp.o" "gcc" "CMakeFiles/itpseq.dir/src/opt/refactor.cpp.o.d"
  "/root/repo/src/opt/rewrite.cpp" "CMakeFiles/itpseq.dir/src/opt/rewrite.cpp.o" "gcc" "CMakeFiles/itpseq.dir/src/opt/rewrite.cpp.o.d"
  "/root/repo/src/opt/simulate.cpp" "CMakeFiles/itpseq.dir/src/opt/simulate.cpp.o" "gcc" "CMakeFiles/itpseq.dir/src/opt/simulate.cpp.o.d"
  "/root/repo/src/sat/dimacs.cpp" "CMakeFiles/itpseq.dir/src/sat/dimacs.cpp.o" "gcc" "CMakeFiles/itpseq.dir/src/sat/dimacs.cpp.o.d"
  "/root/repo/src/sat/drat.cpp" "CMakeFiles/itpseq.dir/src/sat/drat.cpp.o" "gcc" "CMakeFiles/itpseq.dir/src/sat/drat.cpp.o.d"
  "/root/repo/src/sat/preprocess.cpp" "CMakeFiles/itpseq.dir/src/sat/preprocess.cpp.o" "gcc" "CMakeFiles/itpseq.dir/src/sat/preprocess.cpp.o.d"
  "/root/repo/src/sat/proof.cpp" "CMakeFiles/itpseq.dir/src/sat/proof.cpp.o" "gcc" "CMakeFiles/itpseq.dir/src/sat/proof.cpp.o.d"
  "/root/repo/src/sat/proof_check.cpp" "CMakeFiles/itpseq.dir/src/sat/proof_check.cpp.o" "gcc" "CMakeFiles/itpseq.dir/src/sat/proof_check.cpp.o.d"
  "/root/repo/src/sat/solver.cpp" "CMakeFiles/itpseq.dir/src/sat/solver.cpp.o" "gcc" "CMakeFiles/itpseq.dir/src/sat/solver.cpp.o.d"
  "/root/repo/src/sat/tracecheck.cpp" "CMakeFiles/itpseq.dir/src/sat/tracecheck.cpp.o" "gcc" "CMakeFiles/itpseq.dir/src/sat/tracecheck.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
