file(REMOVE_RECURSE
  "libitpseq.a"
)
