# Empty compiler generated dependencies file for bench_ablation_fraig.
# This may be replaced when dependencies are built.
