file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fraig.dir/bench/bench_ablation_fraig.cpp.o"
  "CMakeFiles/bench_ablation_fraig.dir/bench/bench_ablation_fraig.cpp.o.d"
  "bench_ablation_fraig"
  "bench_ablation_fraig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fraig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
