file(REMOVE_RECURSE
  "CMakeFiles/drat_test.dir/tests/drat_test.cpp.o"
  "CMakeFiles/drat_test.dir/tests/drat_test.cpp.o.d"
  "drat_test"
  "drat_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
