# Empty dependencies file for drat_test.
# This may be replaced when dependencies are built.
