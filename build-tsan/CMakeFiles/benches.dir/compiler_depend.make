# Empty custom commands generated dependencies file for benches.
# This may be replaced when dependencies are built.
