
# Per-language clean rules from dependency scanning.
foreach(lang )
  include(CMakeFiles/benches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
