file(REMOVE_RECURSE
  "CMakeFiles/itp_test.dir/tests/itp_test.cpp.o"
  "CMakeFiles/itp_test.dir/tests/itp_test.cpp.o.d"
  "itp_test"
  "itp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
