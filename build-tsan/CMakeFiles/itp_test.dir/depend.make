# Empty dependencies file for itp_test.
# This may be replaced when dependencies are built.
