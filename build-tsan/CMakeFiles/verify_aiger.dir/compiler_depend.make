# Empty compiler generated dependencies file for verify_aiger.
# This may be replaced when dependencies are built.
