file(REMOVE_RECURSE
  "CMakeFiles/verify_aiger.dir/examples/verify_aiger.cpp.o"
  "CMakeFiles/verify_aiger.dir/examples/verify_aiger.cpp.o.d"
  "verify_aiger"
  "verify_aiger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_aiger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
