file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_sat.dir/bench/bench_micro_sat.cpp.o"
  "CMakeFiles/bench_micro_sat.dir/bench/bench_micro_sat.cpp.o.d"
  "bench_micro_sat"
  "bench_micro_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
