# Empty compiler generated dependencies file for bench_micro_sat.
# This may be replaced when dependencies are built.
