file(REMOVE_RECURSE
  "CMakeFiles/preprocess_test.dir/tests/preprocess_test.cpp.o"
  "CMakeFiles/preprocess_test.dir/tests/preprocess_test.cpp.o.d"
  "preprocess_test"
  "preprocess_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preprocess_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
