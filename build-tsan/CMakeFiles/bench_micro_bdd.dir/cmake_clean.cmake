file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_bdd.dir/bench/bench_micro_bdd.cpp.o"
  "CMakeFiles/bench_micro_bdd.dir/bench/bench_micro_bdd.cpp.o.d"
  "bench_micro_bdd"
  "bench_micro_bdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_bdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
