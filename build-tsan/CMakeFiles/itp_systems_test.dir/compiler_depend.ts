# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for itp_systems_test.
