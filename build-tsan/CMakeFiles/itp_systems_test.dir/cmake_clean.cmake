file(REMOVE_RECURSE
  "CMakeFiles/itp_systems_test.dir/tests/itp_systems_test.cpp.o"
  "CMakeFiles/itp_systems_test.dir/tests/itp_systems_test.cpp.o.d"
  "itp_systems_test"
  "itp_systems_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itp_systems_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
