# Empty dependencies file for itp_systems_test.
# This may be replaced when dependencies are built.
