# Empty dependencies file for aigtool.
# This may be replaced when dependencies are built.
