file(REMOVE_RECURSE
  "CMakeFiles/aigtool.dir/tools/aigtool.cpp.o"
  "CMakeFiles/aigtool.dir/tools/aigtool.cpp.o.d"
  "aigtool"
  "aigtool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aigtool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
