file(REMOVE_RECURSE
  "CMakeFiles/state_space_test.dir/tests/state_space_test.cpp.o"
  "CMakeFiles/state_space_test.dir/tests/state_space_test.cpp.o.d"
  "state_space_test"
  "state_space_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/state_space_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
