# Empty dependencies file for bench_micro_itp.
# This may be replaced when dependencies are built.
