file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_itp.dir/bench/bench_micro_itp.cpp.o"
  "CMakeFiles/bench_micro_itp.dir/bench/bench_micro_itp.cpp.o.d"
  "bench_micro_itp"
  "bench_micro_itp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_itp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
