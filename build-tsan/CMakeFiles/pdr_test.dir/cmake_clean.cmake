file(REMOVE_RECURSE
  "CMakeFiles/pdr_test.dir/tests/pdr_test.cpp.o"
  "CMakeFiles/pdr_test.dir/tests/pdr_test.cpp.o.d"
  "pdr_test"
  "pdr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
