# Empty dependencies file for pdr_test.
# This may be replaced when dependencies are built.
