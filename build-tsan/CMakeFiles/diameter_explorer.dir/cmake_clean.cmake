file(REMOVE_RECURSE
  "CMakeFiles/diameter_explorer.dir/examples/diameter_explorer.cpp.o"
  "CMakeFiles/diameter_explorer.dir/examples/diameter_explorer.cpp.o.d"
  "diameter_explorer"
  "diameter_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diameter_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
