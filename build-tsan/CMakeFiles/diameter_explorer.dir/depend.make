# Empty dependencies file for diameter_explorer.
# This may be replaced when dependencies are built.
