# Empty dependencies file for bench_ablation_itpsys.
# This may be replaced when dependencies are built.
