file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_itpsys.dir/bench/bench_ablation_itpsys.cpp.o"
  "CMakeFiles/bench_ablation_itpsys.dir/bench/bench_ablation_itpsys.cpp.o.d"
  "bench_ablation_itpsys"
  "bench_ablation_itpsys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_itpsys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
