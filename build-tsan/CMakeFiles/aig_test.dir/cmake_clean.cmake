file(REMOVE_RECURSE
  "CMakeFiles/aig_test.dir/tests/aig_test.cpp.o"
  "CMakeFiles/aig_test.dir/tests/aig_test.cpp.o.d"
  "aig_test"
  "aig_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aig_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
