file(REMOVE_RECURSE
  "CMakeFiles/portfolio_test.dir/tests/portfolio_test.cpp.o"
  "CMakeFiles/portfolio_test.dir/tests/portfolio_test.cpp.o.d"
  "portfolio_test"
  "portfolio_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/portfolio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
